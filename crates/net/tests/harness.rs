//! In-process loopback harness: one server, many concurrent clients,
//! every reply byte-identical to the local reader, and the shared
//! segment cache proving cross-connection reuse.

mod common;

use std::sync::Arc;
use std::time::Duration;

use atc_net::{AtcClient, ClientOptions, ServeOptions};
use atc_store::ShardPolicy;
use common::{build_store, local_range, local_shard, scratch, TestServer};

#[test]
fn eight_concurrent_clients_match_local_reads_and_share_the_cache() {
    let root = scratch("harness-8");
    let addrs = build_store(&root, 3, ShardPolicy::RoundRobin, 30_000, 1_000, "lz");
    let count = addrs.len() as u64;
    let server = TestServer::start(
        &root,
        ServeOptions {
            workers: 8,
            ..ServeOptions::default()
        },
    );

    // Every client fetches one "hot" shared range (the cache-sharing
    // probe) plus its own overlapping window; the oracle is the local
    // read over the same store.
    let hot = (1_000u64, 9_000u64);
    let hot_expect = Arc::new(local_range(&root, hot.0, hot.1));
    let mut expects = Vec::new();
    let mut windows = Vec::new();
    for t in 0..8u64 {
        let (a, b) = (t * 3_000, t * 3_000 + 6_000);
        expects.push(Arc::new(local_range(&root, a, b)));
        windows.push((a, b));
    }

    let threads: Vec<_> = (0..8usize)
        .map(|t| {
            let addr = server.addr;
            let hot_expect = Arc::clone(&hot_expect);
            let expect = Arc::clone(&expects[t]);
            let (a, b) = windows[t];
            std::thread::spawn(move || {
                let mut client = AtcClient::connect(addr).unwrap();
                let got = client.read_range(hot.0..hot.1).unwrap();
                assert_eq!(got, *hot_expect, "client {t} hot range");
                let got = client.read_range(a..b).unwrap();
                assert_eq!(got, *expect, "client {t} window {a}..{b}");
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    let stats = server.stop();
    assert_eq!(stats.connections, 8);
    assert_eq!(stats.requests, 16);
    assert_eq!(stats.proto_errors, 0, "no protocol errors in a clean run");
    assert_eq!(stats.dropped, 0, "no drops in a clean run");
    // 8 connections hammered the same hot range: whoever decoded a
    // segment first served everyone else from the shared cache.
    assert!(
        stats.cache.hits >= 1,
        "expected cross-connection cache hits, got {:?}",
        stats.cache
    );
    assert_eq!(count, 30_000);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn stat_reports_the_manifest_and_stream_shard_matches_local_cursors() {
    let root = scratch("harness-stat");
    build_store(&root, 3, ShardPolicy::ThreadId, 9_000, 500, "lz");
    let server = TestServer::start(&root, ServeOptions::default());
    let mut client = AtcClient::connect(server.addr).unwrap();

    let stat = client.stat().unwrap();
    assert_eq!(stat.count, 9_000);
    assert_eq!(stat.policy, "thread-id");
    assert_eq!(stat.shard_counts.len(), 3);
    assert_eq!(stat.shard_counts.iter().sum::<u64>(), 9_000);
    assert!(stat.exact_merge, "thread-id stores record their track");

    for shard in 0..3usize {
        let expect = local_shard(&root, shard);
        let got = client.stream_shard(shard as u32, 0).unwrap();
        assert_eq!(got, expect, "shard {shard} full stream");
        // Resume from a mid-frame offset.
        let from = expect.len() as u64 / 2 + 7;
        let got = client.stream_shard(shard as u32, from).unwrap();
        assert_eq!(got, &expect[from as usize..], "shard {shard} from {from}");
    }

    let stats = server.stop();
    assert_eq!(stats.proto_errors + stats.dropped, 0);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn query_rejections_keep_the_connection_alive() {
    let root = scratch("harness-reject");
    build_store(&root, 2, ShardPolicy::RoundRobin, 2_000, 250, "lz");
    let server = TestServer::start(&root, ServeOptions::default());
    let mut client = AtcClient::connect(server.addr).unwrap();

    // Each rejected query answers with a protocol-level Error frame and
    // the *same connection* keeps serving. The inverted range is the
    // point of the first probe.
    #[allow(clippy::reversed_empty_ranges)]
    let err = client.read_range(10..5).unwrap_err();
    assert!(err.to_string().contains("server:"), "{err}");
    let err = client.read_range(0..2_001).unwrap_err();
    assert!(err.to_string().contains("server:"), "{err}");
    let err = client.stream_shard(9, 0).unwrap_err();
    assert!(err.to_string().contains("server:"), "{err}");
    let err = client.stream_shard(0, 1_001).unwrap_err();
    assert!(err.to_string().contains("server:"), "{err}");

    // Empty ranges and offsets at the exact end are valid and empty.
    assert_eq!(client.read_range(500..500).unwrap(), Vec::<u64>::new());
    assert_eq!(client.stream_shard(0, 1_000).unwrap(), Vec::<u64>::new());
    assert_eq!(
        client.read_range(0..2_000).unwrap(),
        local_range(&root, 0, 2_000)
    );

    let stats = server.stop();
    assert_eq!(stats.connections, 1, "one connection served everything");
    assert_eq!(stats.dropped, 0);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn shutdown_is_prompt_with_idle_clients_connected() {
    let root = scratch("harness-shutdown");
    build_store(&root, 2, ShardPolicy::RoundRobin, 1_000, 250, "lz");
    let server = TestServer::start(&root, ServeOptions::default());

    // Park two idle connections, then shut down: run() must return
    // without waiting on them (they close at their next stop poll).
    let a = AtcClient::connect_with(
        server.addr,
        ClientOptions {
            io_timeout: Duration::from_secs(2),
            ..ClientOptions::default()
        },
    )
    .unwrap();
    let b = AtcClient::connect(server.addr).unwrap();
    let start = std::time::Instant::now();
    let stats = server.stop();
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "shutdown waited on idle clients: {:?}",
        start.elapsed()
    );
    assert_eq!(stats.connections, 2);
    drop((a, b));
    let _ = std::fs::remove_dir_all(&root);
}
