//! Property-based protocol equivalence: arbitrary interleaved
//! `ReadRange`/`StreamShard` sequences against a live loopback server
//! must agree, call for call, with a model replaying the same queries
//! on a local `StoreReader` — across every shard policy, including
//! empty and one-past-end ranges, on one long-lived connection.

mod common;

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::OnceLock;

use proptest::collection::vec;
use proptest::prelude::*;

use atc_net::{AtcClient, ServeOptions};
use atc_store::{ShardPolicy, StoreReader};
use common::{build_store, scratch, TestServer};

/// One policy's packed store with a server that lives for the whole
/// test process (proptest cases reuse it; tearing a server down per
/// case would dominate the run).
struct Setup {
    policy: &'static str,
    addr: SocketAddr,
    /// Merged stream in arrival order — the oracle for `ReadRange`.
    merged: Vec<u64>,
    /// Per-shard sub-streams — the oracle for `StreamShard`.
    shards: Vec<Vec<u64>>,
}

fn setups() -> &'static [Setup] {
    static SETUPS: OnceLock<Vec<Setup>> = OnceLock::new();
    SETUPS.get_or_init(|| {
        let policies: [(&'static str, ShardPolicy); 3] = [
            ("rr", ShardPolicy::RoundRobin),
            ("ar", ShardPolicy::AddressRange { shift: 16 }),
            ("tid", ShardPolicy::ThreadId),
        ];
        policies
            .into_iter()
            .map(|(tag, policy)| {
                let root: PathBuf = scratch(&format!("prop-{tag}"));
                build_store(&root, 3, policy, 3_000, 250, "lz");
                let mut reader = StoreReader::open(&root).unwrap();
                let merged = reader.decode_all().unwrap();
                let shards = (0..3usize)
                    .map(|i| {
                        let mut r = StoreReader::open(&root).unwrap();
                        r.shard(i).decode_all().unwrap()
                    })
                    .collect();
                // The server (and its scratch directory) intentionally
                // outlive the test binary's run.
                let server = TestServer::start(&root, ServeOptions::default());
                let addr = server.addr;
                std::mem::forget(server);
                Setup {
                    policy: tag,
                    addr,
                    merged,
                    shards,
                }
            })
            .collect()
    })
}

/// Splitmix64: deterministic op parameters from one seed each (the
/// vendored proptest has no tuple/enum strategies, so compound ops are
/// derived from plain `u64` seeds).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One derived protocol call, replayed against server and model alike.
#[derive(Debug)]
enum Op {
    ReadRange { start: u64, end: u64 },
    StreamShard { shard: u32, from: u64 },
}

/// Expands each seed into an op. The spread deliberately lands on the
/// edges: empty ranges, `end == count`, one-past-end, `from` at the
/// exact shard count, and out-of-range shards.
fn derive_ops(seeds: &[u64], count: u64) -> Vec<Op> {
    let mut ops = Vec::with_capacity(seeds.len() + 4);
    for &seed in seeds {
        let mut state = seed;
        let kind = splitmix(&mut state) % 8;
        ops.push(match kind {
            // In-bounds ranges of every size, a==b included.
            0..=3 => {
                let a = splitmix(&mut state) % (count + 1);
                let b = a + splitmix(&mut state) % (count - a + 1);
                Op::ReadRange { start: a, end: b }
            }
            // Hostile ranges: inverted and past the end.
            4 => {
                let a = splitmix(&mut state) % (count + 3);
                let b = splitmix(&mut state) % (count + 3);
                Op::ReadRange { start: a, end: b }
            }
            // Shard streams from arbitrary (sometimes invalid) offsets.
            5 | 6 => Op::StreamShard {
                shard: (splitmix(&mut state) % 3) as u32,
                from: splitmix(&mut state) % (count + 2),
            },
            // Out-of-range shard indexes.
            _ => Op::StreamShard {
                shard: (splitmix(&mut state) % 6) as u32,
                from: splitmix(&mut state) % 8,
            },
        });
    }
    // Always-on edge cases, independent of what the seeds produced.
    ops.push(Op::ReadRange { start: 0, end: 0 });
    ops.push(Op::ReadRange {
        start: count,
        end: count,
    });
    ops.push(Op::ReadRange {
        start: count,
        end: count + 1,
    });
    ops.push(Op::ReadRange {
        start: 0,
        end: count,
    });
    ops
}

/// The model: what a local reader says this op should produce.
fn model(setup: &Setup, op: &Op) -> Result<Vec<u64>, ()> {
    let count = setup.merged.len() as u64;
    match *op {
        Op::ReadRange { start, end } => {
            if start > end || end > count {
                Err(())
            } else {
                Ok(setup.merged[start as usize..end as usize].to_vec())
            }
        }
        Op::StreamShard { shard, from } => {
            let Some(sub) = setup.shards.get(shard as usize) else {
                return Err(());
            };
            if from > sub.len() as u64 {
                Err(())
            } else {
                Ok(sub[from as usize..].to_vec())
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn request_sequences_agree_with_the_local_reader_model(
        seeds in vec(any::<u64>(), 1..16),
    ) {
        for setup in setups() {
            let count = setup.merged.len() as u64;
            let ops = derive_ops(&seeds, count);
            // One connection per case: rejected queries must not poison
            // the requests that follow them.
            let mut client = AtcClient::connect(setup.addr).unwrap();
            for op in &ops {
                let expect = model(setup, op);
                let got = match *op {
                    Op::ReadRange { start, end } => client.read_range(start..end),
                    Op::StreamShard { shard, from } => client.stream_shard(shard, from),
                };
                match (expect, got) {
                    (Ok(want), Ok(got)) => prop_assert_eq!(
                        got, want, "{} {:?}", setup.policy, op
                    ),
                    (Err(()), Err(e)) => prop_assert!(
                        e.to_string().contains("server:"),
                        "{} {:?}: server rejection expected, got {}",
                        setup.policy, op, e
                    ),
                    (want, got) => prop_assert!(
                        false,
                        "{} {:?}: model {:?} vs client {:?}",
                        setup.policy, op, want.map(|v| v.len()), got.map(|v| v.len())
                    ),
                }
            }
        }
    }

    #[test]
    fn stat_agrees_with_the_local_manifest(_seed in any::<u64>()) {
        for setup in setups() {
            let mut client = AtcClient::connect(setup.addr).unwrap();
            let stat = client.stat().unwrap();
            prop_assert_eq!(stat.count, setup.merged.len() as u64);
            prop_assert_eq!(stat.shard_counts.len(), 3);
            let sub_total: u64 = setup.shards.iter().map(|s| s.len() as u64).sum();
            prop_assert_eq!(stat.shard_counts.iter().sum::<u64>(), sub_total);
            prop_assert!(stat.exact_merge);
        }
    }
}
