//! # atc-prefetch — the C/DC address predictor (Figure 5 substrate)
//!
//! The paper gauges lossy-compression fidelity by simulating "an address
//! predictor based on the C/DC prefetcher" (Nesbit, Dhodapkar & Smith's
//! CZone/Delta-Correlation scheme) over exact and lossy traces, comparing
//! the fractions of non-predicted, correctly predicted and mispredicted
//! addresses. This crate implements that predictor with the paper's
//! parameters: 64 KB CZones, a 256-entry index table, a 256-entry global
//! history buffer, and a 2-delta correlation key.
//!
//! # Examples
//!
//! ```
//! use atc_prefetch::{CdcConfig, CdcPredictor};
//!
//! let mut p = CdcPredictor::new(CdcConfig::paper());
//! // A strided stream inside one CZone becomes predictable.
//! let stats = p.run((0..10_000u64).map(|i| i % 512));
//! assert!(stats.correct_fraction() > 0.5);
//! ```

/// Outcome counters of a C/DC simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CdcStats {
    /// Addresses for which no prediction was pending in their CZone.
    pub non_predicted: u64,
    /// Pending prediction matched the address.
    pub correct: u64,
    /// Pending prediction did not match.
    pub incorrect: u64,
}

impl CdcStats {
    /// Total addresses processed.
    pub fn total(&self) -> u64 {
        self.non_predicted + self.correct + self.incorrect
    }

    /// Fraction of addresses predicted correctly.
    pub fn correct_fraction(&self) -> f64 {
        self.fraction(self.correct)
    }

    /// Fraction of addresses predicted incorrectly.
    pub fn incorrect_fraction(&self) -> f64 {
        self.fraction(self.incorrect)
    }

    /// Fraction of addresses with no pending prediction.
    pub fn non_predicted_fraction(&self) -> f64 {
        self.fraction(self.non_predicted)
    }

    fn fraction(&self, part: u64) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            part as f64 / total as f64
        }
    }
}

/// Configuration of the C/DC predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CdcConfig {
    /// log2 of the CZone size in *block addresses*. The paper's 64 KB
    /// CZones over 64-byte blocks give `64 KB / 64 B = 1024` blocks → 10.
    pub czone_shift: u32,
    /// Index-table entries (direct-mapped by CZone id).
    pub index_entries: usize,
    /// Global-history-buffer entries (circular).
    pub ghb_entries: usize,
    /// How far back the CZone chain is walked when correlating.
    pub max_chain: usize,
}

impl CdcConfig {
    /// The paper's parameters: 64 KB CZones, 256-entry IT, 256-entry GHB,
    /// 2-delta correlation.
    pub fn paper() -> Self {
        Self {
            czone_shift: 10,
            index_entries: 256,
            ghb_entries: 256,
            max_chain: 64,
        }
    }
}

impl Default for CdcConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// One GHB entry: an address plus the sequence number of the previous
/// address in the same CZone.
#[derive(Debug, Clone, Copy)]
struct GhbEntry {
    addr: u64,
    /// Sequence number of the previous same-CZone entry (`u64::MAX` none).
    prev_seq: u64,
}

/// One index-table entry.
#[derive(Debug, Clone, Copy)]
struct ItEntry {
    /// Full CZone id (tag).
    czone: u64,
    /// Sequence number of the most recent GHB entry for this CZone.
    head_seq: u64,
    /// Prediction for the next address in this CZone, if any.
    prediction: Option<u64>,
}

/// The C/DC (CZone + Delta Correlation) address predictor.
///
/// For every incoming block address the predictor first *scores* the
/// pending prediction of the address's CZone (correct / incorrect /
/// non-predicted), then records the address in the GHB and computes a new
/// prediction by matching the CZone's two most recent deltas against its
/// delta history.
#[derive(Debug)]
pub struct CdcPredictor {
    config: CdcConfig,
    ghb: Vec<Option<GhbEntry>>,
    it: Vec<Option<ItEntry>>,
    next_seq: u64,
    stats: CdcStats,
}

impl CdcPredictor {
    /// Creates a predictor.
    ///
    /// # Panics
    ///
    /// Panics if any size parameter is zero.
    pub fn new(config: CdcConfig) -> Self {
        assert!(config.index_entries > 0 && config.ghb_entries > 0 && config.max_chain > 0);
        Self {
            config,
            ghb: vec![None; config.ghb_entries],
            it: vec![None; config.index_entries],
            next_seq: 0,
            stats: CdcStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> CdcConfig {
        self.config
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> CdcStats {
        self.stats
    }

    /// Processes one block address; returns whether it was predicted and
    /// correct (`Some(true)`), predicted and wrong (`Some(false)`), or not
    /// predicted (`None`).
    pub fn access(&mut self, addr: u64) -> Option<bool> {
        let czone = addr >> self.config.czone_shift;
        let slot = (czone as usize) % self.config.index_entries;

        // Score the pending prediction.
        let outcome = match &self.it[slot] {
            Some(e) if e.czone == czone => e.prediction.map(|p| p == addr),
            _ => None,
        };
        match outcome {
            Some(true) => self.stats.correct += 1,
            Some(false) => self.stats.incorrect += 1,
            None => self.stats.non_predicted += 1,
        }

        // Link the address into the GHB.
        let prev_seq = match &self.it[slot] {
            Some(e) if e.czone == czone => e.head_seq,
            _ => u64::MAX,
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.ghb[(seq % self.config.ghb_entries as u64) as usize] =
            Some(GhbEntry { addr, prev_seq });

        // Compute the next prediction for this CZone.
        let prediction = self.predict(addr, seq);
        self.it[slot] = Some(ItEntry {
            czone,
            head_seq: seq,
            prediction,
        });
        outcome
    }

    /// Walks the CZone chain and applies 2-delta correlation.
    fn predict(&self, _addr: u64, head_seq: u64) -> Option<u64> {
        // Collect recent addresses in this CZone, newest first.
        let mut chain = Vec::with_capacity(self.config.max_chain);
        let mut seq = head_seq;
        while chain.len() < self.config.max_chain {
            if seq == u64::MAX || self.next_seq - seq > self.config.ghb_entries as u64 {
                break; // entry overwritten or chain end
            }
            let Some(entry) = &self.ghb[(seq % self.config.ghb_entries as u64) as usize] else {
                break;
            };
            chain.push(entry.addr);
            seq = entry.prev_seq;
        }
        if chain.len() < 4 {
            return None; // need two key deltas plus history to search
        }
        // Deltas going back in time: d[i] = chain[i] - chain[i+1].
        let deltas: Vec<i64> = chain
            .windows(2)
            .map(|w| w[0].wrapping_sub(w[1]) as i64)
            .collect();
        // Correlation key: the two most recent deltas.
        let key = (deltas[0], deltas[1]);
        // Find the key's previous occurrence; the delta that followed it
        // (one step newer) is the predicted next delta.
        for j in 1..deltas.len() - 1 {
            if deltas[j] == key.0 && deltas[j + 1] == key.1 {
                let next_delta = deltas[j - 1];
                return Some(chain[0].wrapping_add(next_delta as u64));
            }
        }
        None
    }

    /// Processes a whole trace and returns the accumulated statistics.
    pub fn run<I: IntoIterator<Item = u64>>(&mut self, addrs: I) -> CdcStats {
        for a in addrs {
            self.access(a);
        }
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_stride_learned() {
        let mut p = CdcPredictor::new(CdcConfig::paper());
        // Stride-2 inside one CZone: after warm-up, everything is correct.
        let stats = p.run((0..500u64).map(|i| (i * 2) % 1024));
        assert!(stats.correct > 400, "correct={}", stats.correct);
        assert_eq!(stats.total(), 500);
    }

    #[test]
    fn random_rarely_predicted() {
        let mut p = CdcPredictor::new(CdcConfig::paper());
        let mut x: u64 = 11;
        let stats = p.run((0..20_000).map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            (x >> 30) % (1 << 20)
        }));
        assert!(
            stats.correct_fraction() < 0.05,
            "random trace should not be predictable: {stats:?}"
        );
    }

    #[test]
    fn independent_czones() {
        let mut p = CdcPredictor::new(CdcConfig::paper());
        // Two interleaved strided streams in different CZones: both are
        // predictable because C/DC separates them.
        let trace: Vec<u64> = (0..1000u64)
            .flat_map(|i| [i % 1024, (1 << 15) + (i * 3) % 1024])
            .collect();
        let stats = p.run(trace.iter().copied());
        assert!(
            stats.correct_fraction() > 0.7,
            "interleaved strides should be predictable: {stats:?}"
        );
    }

    #[test]
    fn repeating_delta_pattern() {
        let mut p = CdcPredictor::new(CdcConfig::paper());
        // Delta pattern +1,+1,+5 repeating: 2-delta correlation captures it.
        let mut addr = 0u64;
        let mut trace = Vec::new();
        for i in 0..600 {
            trace.push(addr % 1024);
            addr += if i % 3 == 2 { 5 } else { 1 };
        }
        let stats = p.run(trace);
        assert!(
            stats.correct_fraction() > 0.6,
            "repeating deltas should be predicted: {stats:?}"
        );
    }

    #[test]
    fn stats_fractions_sum_to_one() {
        let mut p = CdcPredictor::new(CdcConfig::paper());
        let stats = p.run((0..1000u64).map(|i| (i * 7) % 2048));
        let sum =
            stats.correct_fraction() + stats.incorrect_fraction() + stats.non_predicted_fraction();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace() {
        let mut p = CdcPredictor::new(CdcConfig::paper());
        let stats = p.run(std::iter::empty());
        assert_eq!(stats.total(), 0);
        assert_eq!(stats.correct_fraction(), 0.0);
    }

    #[test]
    fn ghb_wraparound_safe() {
        // More addresses than GHB entries: old links must be detected as
        // dangling, not followed into unrelated data.
        let mut p = CdcPredictor::new(CdcConfig {
            ghb_entries: 16,
            ..CdcConfig::paper()
        });
        let stats = p.run((0..10_000u64).map(|i| (i * 13) % (1 << 18)));
        assert_eq!(stats.total(), 10_000);
    }
}
