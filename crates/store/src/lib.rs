//! # atc-store — a sharded multi-trace store
//!
//! The single-trace layer ([`atc_core`]) compresses *one* address stream
//! into *one* ATC trace directory. Production tracing workloads manage
//! fleets of streams — per-core pipelines, per-workload captures — so
//! this crate scales the container sideways: an [`AtcStore`] is a root
//! directory holding `N` complete ATC trace directories (*shards*) plus a
//! `store-manifest`, with incoming addresses routed across shards by a
//! pluggable [`ShardPolicy`]:
//!
//! * [`ShardPolicy::RoundRobin`] — deal addresses across shards in
//!   rotation.
//! * [`ShardPolicy::AddressRange`] — keep each aligned address region in
//!   one shard (spatial locality stays shard-local).
//! * [`ShardPolicy::ThreadId`] — keep each caller-keyed sub-stream
//!   (thread, core) in one shard, the natural layout for per-thread
//!   traces.
//!
//! Every policy's merged read-back replays the **exact global arrival
//! order**: round-robin derives it from the rotation, and the
//! data-dependent policies record their routing decisions as a
//! compressed run-length *interleave track*
//! ([`atc_core::format::InterleaveTrack`]) in the store manifest, which
//! [`StoreReader`] replays run by run. Stores packed before the track
//! existed (manifest version 1) still read — as shard concatenation,
//! reported by [`StoreReader::merge_is_exact`].
//!
//! Every shard is an ordinary trace directory: lossless or lossy mode,
//! any codec, readable by plain [`atc_core::AtcReader`]. Writing divides
//! one compression-thread budget across the shard writers (each of which
//! runs the parallel segment/chunk pipelines from [`atc_codec`]); reading
//! merges shards back through the zero-copy
//! [`atc_core::AtcReader::next_frame`] path, or hands out per-shard
//! cursors ([`StoreReader::into_shards`]) for parallel analysis.
//!
//! # Examples
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use atc_core::Mode;
//! use atc_store::{AtcStore, ShardPolicy, StoreOptions, StoreReader};
//!
//! let root = std::env::temp_dir().join("atc-store-lib-doc");
//! # let _ = std::fs::remove_dir_all(&root);
//! let mut store = AtcStore::create(
//!     &root,
//!     Mode::Lossless,
//!     StoreOptions {
//!         shards: 4,
//!         policy: ShardPolicy::RoundRobin,
//!         ..StoreOptions::default()
//!     },
//! )?;
//! store.code_all((0..10_000u64).map(|i| 0x4000_0000 + i * 64))?;
//! let stats = store.finish()?;
//! assert_eq!(stats.count, 10_000);
//!
//! let mut reader = StoreReader::open(&root)?;
//! let back = reader.decode_all()?;
//! assert_eq!(back.len(), 10_000);
//! assert_eq!(back[1], 0x4000_0040);
//! # std::fs::remove_dir_all(&root)?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod policy;
mod reader;
mod service;
mod writer;

pub use policy::ShardPolicy;
pub use reader::StoreReader;
pub use service::StoreService;
pub use writer::{AtcStore, StoreOptions, StoreStats};
