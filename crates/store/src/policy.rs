//! Shard-routing policies: which shard each incoming address lands in.

/// How an [`AtcStore`](crate::AtcStore) routes incoming addresses across
/// its shards.
///
/// The policy (with its parameters) is recorded in the store manifest.
/// Every policy's merged read-back replays the exact global arrival
/// order: round-robin derives it from its rotation, and the
/// data-dependent policies record their routing decisions as the
/// manifest's interleave track
/// ([`atc_core::format::InterleaveTrack`]).
///
/// # Examples
///
/// ```
/// use atc_store::ShardPolicy;
///
/// let p = ShardPolicy::AddressRange { shift: 12 };
/// assert_eq!(p.to_name(), "addr-range:12");
/// assert_eq!(ShardPolicy::parse(&p.to_name()), Some(p));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPolicy {
    /// Deal addresses across shards one at a time, in arrival order.
    ///
    /// The one policy whose interleaving is *derivable*: the reader
    /// re-deals the merged stream in the same rotation without any
    /// recorded track (the other policies ship an interleave track in
    /// the manifest to get the same exact read-back).
    RoundRobin,
    /// Route by address region: shard `(addr >> shift) % shards`, so each
    /// aligned `1 << shift`-byte region always lands in the same shard
    /// (spatial locality stays shard-local, which is what the bytesort
    /// transform feeds on).
    AddressRange {
        /// Region size exponent: addresses sharing `addr >> shift` are
        /// routed together.
        shift: u32,
    },
    /// Route by the caller-supplied stream key of
    /// [`AtcStore::code_from`](crate::AtcStore::code_from) (thread id,
    /// core id, …): shard `key % shards`. Each key's sub-stream is
    /// preserved in order, the natural layout for per-thread traces.
    ThreadId,
}

impl ShardPolicy {
    /// Shard index for one address.
    ///
    /// `seq` is the global arrival index, `key` the caller's stream key
    /// (0 unless [`AtcStore::code_from`](crate::AtcStore::code_from) was
    /// used).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn route(&self, seq: u64, key: u64, addr: u64, shards: usize) -> usize {
        assert!(shards > 0, "store needs at least one shard");
        let n = shards as u64;
        (match self {
            ShardPolicy::RoundRobin => seq % n,
            ShardPolicy::AddressRange { shift } => (addr >> (*shift).min(63)) % n,
            ShardPolicy::ThreadId => key % n,
        }) as usize
    }

    /// Whether the policy's interleaving is *derivable* from the policy
    /// alone — true only for [`ShardPolicy::RoundRobin`], whose rotation
    /// the reader synthesizes. The data-dependent policies return
    /// `false`: their exact merge needs the manifest's recorded
    /// interleave track (which the store writer always records for
    /// them), and without it — old manifests — the merged read falls
    /// back to shard concatenation.
    pub fn merge_is_exact(&self) -> bool {
        matches!(self, ShardPolicy::RoundRobin)
    }

    /// The manifest/CLI spelling: `round-robin`, `addr-range:<shift>`,
    /// or `thread-id`.
    pub fn to_name(&self) -> String {
        match self {
            ShardPolicy::RoundRobin => "round-robin".into(),
            ShardPolicy::AddressRange { shift } => format!("addr-range:{shift}"),
            ShardPolicy::ThreadId => "thread-id".into(),
        }
    }

    /// Parses [`ShardPolicy::to_name`] spellings; `None` for anything
    /// else.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "round-robin" => Some(ShardPolicy::RoundRobin),
            "thread-id" => Some(ShardPolicy::ThreadId),
            other => {
                let shift = other.strip_prefix("addr-range:")?;
                Some(ShardPolicy::AddressRange {
                    shift: shift.parse().ok()?,
                })
            }
        }
    }
}

impl Default for ShardPolicy {
    /// Round-robin: exact merged read-back with no recorded track.
    fn default() -> Self {
        ShardPolicy::RoundRobin
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for p in [
            ShardPolicy::RoundRobin,
            ShardPolicy::AddressRange { shift: 0 },
            ShardPolicy::AddressRange { shift: 22 },
            ShardPolicy::ThreadId,
        ] {
            assert_eq!(ShardPolicy::parse(&p.to_name()), Some(p));
        }
        assert_eq!(ShardPolicy::parse("nope"), None);
        assert_eq!(ShardPolicy::parse("addr-range:x"), None);
    }

    #[test]
    fn round_robin_deals_in_rotation() {
        let p = ShardPolicy::RoundRobin;
        let hits: Vec<usize> = (0..7u64).map(|seq| p.route(seq, 0, 0xABCD, 3)).collect();
        assert_eq!(hits, vec![0, 1, 2, 0, 1, 2, 0]);
        assert!(p.merge_is_exact());
    }

    #[test]
    fn addr_range_keeps_regions_together() {
        let p = ShardPolicy::AddressRange { shift: 12 };
        let base = 0x4000_0000u64;
        let s = p.route(0, 0, base, 4);
        for off in 0..0x1000u64 {
            assert_eq!(p.route(off, 99, base + off, 4), s);
        }
        assert_ne!(p.route(0, 0, base + 0x1000, 4), s);
        assert!(!p.merge_is_exact());
    }

    #[test]
    fn thread_id_routes_by_key() {
        let p = ShardPolicy::ThreadId;
        assert_eq!(p.route(5, 0, 0xFFFF, 4), 0);
        assert_eq!(p.route(6, 7, 0xFFFF, 4), 3);
    }

    #[test]
    fn extreme_shift_saturates() {
        let p = ShardPolicy::AddressRange { shift: 200 };
        // shift clamps to 63: u64::MAX >> 63 == 1, 1 % 5 == 1.
        assert_eq!(p.route(0, 0, u64::MAX, 5), 1);
    }
}
