//! The sharded store reader: merged and per-shard cursors.

use std::path::{Path, PathBuf};

use atc_core::format::{shard_dir_name, StoreManifest, STORE_MANIFEST_FILE};
use atc_core::{AtcError, AtcReader, ReadOptions, Result};
use atc_engine::Engine;

use crate::policy::ShardPolicy;

/// One shard's decoded-but-unmerged values: a flat buffer plus a consume
/// cursor, so refills are single `extend_from_slice` copies of whole
/// frames and the zipper reads plain slices (no deque bookkeeping per
/// value).
#[derive(Debug, Default)]
struct ShardBuf {
    vals: Vec<u64>,
    head: usize,
}

impl ShardBuf {
    fn is_empty(&self) -> bool {
        self.head == self.vals.len()
    }

    /// Values buffered and not yet consumed.
    fn available(&self) -> usize {
        self.vals.len() - self.head
    }

    /// Appends one decoded frame, reclaiming the buffer first if it was
    /// fully consumed (the steady state, so the buffer never grows past
    /// a frame plus the current leftover).
    fn push_frame(&mut self, frame: &[u64]) {
        if self.is_empty() {
            self.vals.clear();
            self.head = 0;
        }
        self.vals.extend_from_slice(frame);
    }

    fn pop(&mut self) -> Option<u64> {
        let v = self.vals.get(self.head).copied();
        if v.is_some() {
            self.head += 1;
        }
        v
    }
}

/// How the merged cursor reassembles the global stream (decided once at
/// open from the policy and the manifest's interleave section).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MergeMode {
    /// Round-robin: exact arrival order from the synthesized constant-run
    /// rotation — the degenerate interleave track that never needs to be
    /// recorded.
    Rotation,
    /// Exact arrival order replayed from the manifest's recorded
    /// [`InterleaveTrack`](atc_core::format::InterleaveTrack) (data-
    /// dependent policies, manifest version ≥ 2).
    Track,
    /// No track on disk (version-1 manifest under `addr-range` /
    /// `thread-id`): shards concatenate in shard order, the pre-track
    /// behavior.
    Concat,
}

/// A reader over a store written by [`AtcStore`](crate::AtcStore).
///
/// Two read shapes:
///
/// * **Merged** ([`StoreReader::decode`] / [`StoreReader::decode_all`]) —
///   one logical stream across all shards, replayed in the *exact*
///   original arrival order whenever the order is knowable: round-robin
///   derives it from the rotation, and every other policy replays the
///   manifest's recorded interleave track (manifest version ≥ 2). Only a
///   track-less old manifest under a data-dependent policy falls back to
///   shard *concatenation* (each shard's sub-stream stays exact, the
///   global interleaving is lost) — [`StoreReader::merge_is_exact`]
///   reports which shape this store gets.
/// * **Per-shard** ([`StoreReader::shard`] / [`StoreReader::into_shards`])
///   — direct access to each shard's [`AtcReader`] cursor, e.g. to fan
///   shards out to analysis threads.
///
/// Shard payloads refill through the zero-copy
/// [`AtcReader::next_frame`] path, so the merged cursor rides the
/// readahead reassembly buffers when [`ReadOptions::threads`] > 1; every
/// shard's decode tasks share one engine (injected through
/// [`ReadOptions::engine`], or the process-wide default).
///
/// The exact merged cursor is *batched*: instead of stepping one value at
/// a time through the per-shard buffers (a modulo or run lookup, a pop,
/// and a bounds check per address), it fills a flat merged buffer in bulk
/// — whole frame-sized rotations for round-robin, whole run slices for a
/// recorded track — so the per-value cost of the hot `decode()` loop is
/// an indexed read.
#[derive(Debug)]
pub struct StoreReader {
    manifest: StoreManifest,
    policy: ShardPolicy,
    mode: MergeMode,
    shards: Vec<AtcReader>,
    /// Per-shard decoded values not yet merged out.
    bufs: Vec<ShardBuf>,
    /// Bulk-merged values awaiting hand-out (exact merge modes only).
    merged: Vec<u64>,
    /// Cursor into `merged`.
    merged_pos: usize,
    /// Batched merging on/off (see [`StoreReader::merge_batching`]).
    batch: bool,
    /// Addresses handed out by the merged cursor.
    produced: u64,
    /// Current shard for shard-ordered (concatenation) merging.
    cursor: usize,
    /// Recorded interleave runs ([`MergeMode::Track`] only).
    runs: Vec<(u32, u64)>,
    /// Current run in `runs`.
    run_idx: usize,
    /// Values already replayed from the current run.
    run_off: u64,
    /// Whether the end-of-store drain check already passed.
    end_verified: bool,
}

impl StoreReader {
    /// Opens a store root with default [`ReadOptions`].
    ///
    /// # Errors
    ///
    /// Same failure modes as [`StoreReader::open_with`].
    pub fn open<P: AsRef<Path>>(root: P) -> Result<Self> {
        Self::open_with(root, ReadOptions::default())
    }

    /// Opens a store root. `options.chunk_cache` applies to every shard
    /// reader; `options.threads` is the store's *total* decompression
    /// parallelism: all shard readers submit their decode tasks to **one
    /// shared engine** with that many workers (injected through
    /// [`ReadOptions::engine`], or the process-wide default grown to
    /// `threads`), so a drained shard's capacity serves the shards still
    /// decoding instead of sitting behind a static per-shard split. With
    /// `threads <= 1` every shard reads serially and no pipeline spawns
    /// at all.
    ///
    /// # Errors
    ///
    /// Fails if the manifest is missing/malformed, names an unknown
    /// policy, or any shard trace fails to open.
    pub fn open_with<P: AsRef<Path>>(root: P, options: ReadOptions) -> Result<Self> {
        let root: PathBuf = root.as_ref().to_path_buf();
        let manifest_text =
            std::fs::read_to_string(root.join(STORE_MANIFEST_FILE)).map_err(|e| {
                AtcError::Format(format!(
                    "cannot read {}/{STORE_MANIFEST_FILE}: {e}",
                    root.display()
                ))
            })?;
        let manifest = StoreManifest::parse(&manifest_text)?;
        let policy = ShardPolicy::parse(&manifest.policy).ok_or_else(|| {
            AtcError::Format(format!("unknown shard policy {:?}", manifest.policy))
        })?;
        // One engine for every shard's decode tasks (None stays None for
        // the serial path, where no tasks are submitted at all).
        let engine = (options.threads > 1).then(|| {
            options
                .engine
                .clone()
                .unwrap_or_else(|| Engine::global_with(options.threads))
        });
        let shards = (0..manifest.shards())
            .map(|i| {
                AtcReader::open_with(
                    root.join(shard_dir_name(i)),
                    ReadOptions {
                        engine: engine.clone(),
                        ..options.clone()
                    },
                )
            })
            .collect::<Result<Vec<_>>>()?;
        // The manifest's per-shard counts must agree with what each shard
        // records about itself — a tampered manifest whose counts merely
        // sum correctly would otherwise make `stat` (and the merge
        // bookkeeping) report fabricated numbers.
        for (i, shard) in shards.iter().enumerate() {
            if shard.meta().count != manifest.shard_counts[i] {
                return Err(AtcError::Format(format!(
                    "manifest says shard {i} holds {} addresses, its trace says {}",
                    manifest.shard_counts[i],
                    shard.meta().count
                )));
            }
        }
        let bufs = shards.iter().map(|_| ShardBuf::default()).collect();
        // Merge-mode table (also in docs/ARCHITECTURE.md): round-robin is
        // always exact (synthesized rotation); other policies are exact
        // when the manifest recorded the interleave track, and fall back
        // to concatenation for old track-less manifests.
        let (mode, runs) = if policy.merge_is_exact() {
            (MergeMode::Rotation, Vec::new())
        } else if let Some(track) = &manifest.interleave {
            // The track was validated against shard_counts at parse time,
            // and shard_counts against each shard's meta above, so every
            // run below names a real shard holding enough addresses.
            (MergeMode::Track, track.runs().to_vec())
        } else {
            (MergeMode::Concat, Vec::new())
        };
        Ok(Self {
            manifest,
            policy,
            mode,
            shards,
            bufs,
            merged: Vec::new(),
            merged_pos: 0,
            batch: true,
            produced: 0,
            cursor: 0,
            runs,
            run_idx: 0,
            run_off: 0,
            end_verified: false,
        })
    }

    /// Enables or disables bulk merging (on by default) for the exact
    /// merge modes. Off, the merged cursor steps one value at a time
    /// through the per-shard buffers — the pre-batching behavior, kept as
    /// a reference for the `store` bench's `read_stepwise` axis and for
    /// debugging. Both modes produce identical values.
    pub fn merge_batching(&mut self, enabled: bool) {
        self.batch = enabled;
    }

    /// Whether the merged cursor replays the exact global arrival order.
    /// `true` for round-robin and for any store whose manifest carries
    /// the interleave track; `false` only for track-less old manifests
    /// under `addr-range` / `thread-id`, which merge as shard
    /// concatenation.
    pub fn merge_is_exact(&self) -> bool {
        self.mode != MergeMode::Concat
    }

    /// The store manifest.
    pub fn manifest(&self) -> &StoreManifest {
        &self.manifest
    }

    /// The routing policy recorded in the manifest.
    pub fn policy(&self) -> ShardPolicy {
        self.policy
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard cursor for shard `index`.
    ///
    /// Reading through it advances that shard; the merged cursor and the
    /// per-shard cursors share position, so use one shape per reader.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.shards()`.
    pub fn shard(&mut self, index: usize) -> &mut AtcReader {
        &mut self.shards[index]
    }

    /// Splits the store into its per-shard cursors (shard 0 first), e.g.
    /// to hand each shard to its own analysis thread.
    pub fn into_shards(self) -> Vec<AtcReader> {
        self.shards
    }

    /// Decodes the next merged value; `Ok(None)` at clean end of store.
    ///
    /// # Errors
    ///
    /// Propagates shard reader errors, and reports a store whose shards
    /// end before — or hold data beyond — the manifest's count.
    pub fn decode(&mut self) -> Result<Option<u64>> {
        // Fast path: hand out bulk-merged values from the merged buffer.
        if self.merged_pos < self.merged.len() {
            return Ok(Some(self.take_merged()));
        }
        if self.produced == self.manifest.count {
            self.verify_drained()?;
            return Ok(None);
        }
        let shard_count = self.shards.len() as u64;
        let shard = match self.mode {
            MergeMode::Rotation => {
                if self.batch
                    && self.produced.is_multiple_of(shard_count)
                    && self.manifest.count - self.produced >= shard_count
                {
                    // Batched rotation: zip whole frame-sized rotations
                    // across the shards instead of stepping one value at
                    // a time.
                    self.refill_rotation_zipper()?;
                    return Ok(Some(self.take_merged()));
                }
                // Deal back in the writer's rotation (the unbatched path:
                // batching off, or the final partial rotation).
                (self.produced % shard_count) as usize
            }
            MergeMode::Track => {
                if self.batch {
                    // Batched replay: copy whole run slices into the
                    // merged buffer.
                    self.refill_track_zipper()?;
                    return Ok(Some(self.take_merged()));
                }
                self.track_shard()
            }
            MergeMode::Concat => {
                // Shard-ordered concatenation: advance past drained
                // shards.
                while self.cursor < self.shards.len()
                    && self.bufs[self.cursor].is_empty()
                    && !self.refill(self.cursor)?
                {
                    self.cursor += 1;
                }
                if self.cursor == self.shards.len() {
                    return Err(AtcError::Format(format!(
                        "store ended after {} of {} addresses",
                        self.produced, self.manifest.count
                    )));
                }
                self.cursor
            }
        };
        while self.bufs[shard].is_empty() {
            if !self.refill(shard)? {
                return Err(AtcError::Format(format!(
                    "shard {shard} ended after {} of {} store addresses",
                    self.produced, self.manifest.count
                )));
            }
        }
        // atclint: allow(library-unwrap) -- infallible: the refill loop
        // above either errored out or left the shard's buffer non-empty.
        let v = self.bufs[shard].pop().expect("refilled above");
        self.produced += 1;
        if self.mode == MergeMode::Track {
            // Only consume the track position once the value is really
            // handed out (a refill error above must not skip a slot).
            self.run_off += 1;
        }
        Ok(Some(v))
    }

    /// Decodes the remainder of the merged stream into a vector.
    ///
    /// # Errors
    ///
    /// Propagates the first error from [`StoreReader::decode`].
    pub fn decode_all(&mut self) -> Result<Vec<u64>> {
        let remaining = self.manifest.count.saturating_sub(self.produced);
        let mut out = Vec::with_capacity(remaining.min(1 << 24) as usize);
        while let Some(v) = self.decode()? {
            out.push(v);
            // Bulk-append the rest of the zipped block in one extend
            // instead of re-entering decode() per value.
            if self.merged_pos < self.merged.len() {
                out.extend_from_slice(&self.merged[self.merged_pos..]);
                self.produced += (self.merged.len() - self.merged_pos) as u64;
                self.merged_pos = self.merged.len();
            }
        }
        Ok(out)
    }

    /// Repositions the merged cursor to global position `pos` (the next
    /// `decode` returns the store's `pos`-th address) without decoding
    /// the stream in front of it: the target is translated into a
    /// per-shard consumed count — a division for round-robin, a prefix
    /// walk over the recorded interleave runs, cumulative shard counts
    /// for the concatenation fallback — and each shard then seeks its
    /// own trace through [`AtcReader::seek`]'s sidecar fast path
    /// (decoding at most one segment, plus up to one frame of in-frame
    /// skip). For a recorded interleave track the run cursor is
    /// restored mid-run, so replay continues exactly where the writer
    /// was.
    ///
    /// # Errors
    ///
    /// Fails on targets past the manifest count and on shard seek
    /// errors (e.g. lossy shards, which are not frame-addressable).
    pub fn seek_to(&mut self, pos: u64) -> Result<()> {
        if pos > self.manifest.count {
            return Err(AtcError::Format(format!(
                "seek target {pos} is past the store's {} addresses",
                self.manifest.count
            )));
        }
        let n = self.shards.len() as u64;
        let mut consumed = vec![0u64; self.shards.len()];
        let mut run_idx = 0usize;
        let mut run_off = 0u64;
        match self.mode {
            MergeMode::Rotation => {
                for (i, c) in consumed.iter_mut().enumerate() {
                    *c = pos / n + u64::from((i as u64) < pos % n);
                }
            }
            MergeMode::Track => {
                let mut acc = 0u64;
                run_idx = self.runs.len();
                for (i, &(shard, len)) in self.runs.iter().enumerate() {
                    if acc + len <= pos {
                        consumed[shard as usize] += len;
                        acc += len;
                        continue;
                    }
                    consumed[shard as usize] += pos - acc;
                    run_idx = i;
                    run_off = pos - acc;
                    break;
                }
            }
            MergeMode::Concat => {
                let mut remaining = pos;
                self.cursor = self.shards.len();
                for (i, &c) in self.manifest.shard_counts.iter().enumerate() {
                    if remaining >= c {
                        consumed[i] = c;
                        remaining -= c;
                    } else {
                        consumed[i] = remaining;
                        self.cursor = i;
                        break;
                    }
                }
            }
        }
        for (i, shard) in self.shards.iter_mut().enumerate() {
            let buffer = shard.meta().buffer.max(1);
            shard.seek(consumed[i] / buffer)?;
            self.bufs[i].vals.clear();
            self.bufs[i].head = 0;
            // Discard the in-frame remainder; the frame's tail stays
            // buffered in the shard reader and merges out first.
            for _ in 0..(consumed[i] % buffer) {
                shard.decode()?.ok_or_else(|| {
                    AtcError::Format(format!(
                        "shard {i} ended while seeking to its address {}",
                        consumed[i]
                    ))
                })?;
            }
        }
        self.merged.clear();
        self.merged_pos = 0;
        self.run_idx = run_idx;
        self.run_off = run_off;
        self.produced = pos;
        self.end_verified = false;
        Ok(())
    }

    /// Reads the half-open global range `range` of the merged stream:
    /// [`StoreReader::seek_to`] the start, then decode exactly
    /// `range.end - range.start` values. The result is byte-identical to
    /// that slice of a full linear [`StoreReader::decode_all`].
    ///
    /// # Errors
    ///
    /// Fails on inverted or out-of-bounds ranges and on anything
    /// [`StoreReader::seek_to`] / [`StoreReader::decode`] can fail on.
    pub fn read_range(&mut self, range: std::ops::Range<u64>) -> Result<Vec<u64>> {
        if range.start > range.end || range.end > self.manifest.count {
            return Err(AtcError::Format(format!(
                "range {}..{} does not fit the store's {} addresses",
                range.start, range.end, self.manifest.count
            )));
        }
        self.seek_to(range.start)?;
        let want = range.end - range.start;
        let mut out = Vec::with_capacity(want.min(1 << 24) as usize);
        while (out.len() as u64) < want {
            match self.decode()? {
                Some(v) => {
                    out.push(v);
                    // Bulk-drain the zipped block like decode_all, capped
                    // at what the range still needs.
                    let need = want as usize - out.len();
                    let take = need.min(self.merged.len() - self.merged_pos);
                    out.extend_from_slice(&self.merged[self.merged_pos..self.merged_pos + take]);
                    self.merged_pos += take;
                    self.produced += take as u64;
                }
                None => {
                    return Err(AtcError::Format(format!(
                        "store ended after {} of the {want} addresses in {}..{}",
                        out.len(),
                        range.start,
                        range.end
                    )));
                }
            }
        }
        Ok(out)
    }

    /// Hands out the next bulk-merged value (caller ensured one exists).
    fn take_merged(&mut self) -> u64 {
        let v = self.merged[self.merged_pos];
        self.merged_pos += 1;
        self.produced += 1;
        v
    }

    /// The shard owning the next value according to the recorded
    /// interleave track, skipping completed runs.
    fn track_shard(&mut self) -> usize {
        loop {
            let (shard, len) = self.runs[self.run_idx];
            if self.run_off < len {
                return shard as usize;
            }
            self.run_idx += 1;
            self.run_off = 0;
        }
    }

    /// Replays whole run slices from the recorded track into the flat
    /// merged buffer: each step bulk-copies `min(run remainder, shard
    /// buffer)` values, refilling a shard only when the merged buffer is
    /// still empty (so a value already decoded is never held hostage to
    /// another shard's I/O).
    fn refill_track_zipper(&mut self) -> Result<()> {
        /// Merged values per refill — frame-order magnitude, so the hot
        /// loop amortizes run bookkeeping the way the rotation zipper
        /// amortizes the modulo.
        const TARGET: usize = 4096;
        debug_assert_eq!(self.merged_pos, self.merged.len(), "merged drained");
        self.merged.clear();
        self.merged_pos = 0;
        while self.merged.len() < TARGET {
            let Some(&(shard, len)) = self.runs.get(self.run_idx) else {
                break;
            };
            if self.run_off == len {
                self.run_idx += 1;
                self.run_off = 0;
                continue;
            }
            let shard = shard as usize;
            if self.bufs[shard].is_empty() {
                if !self.merged.is_empty() {
                    // Hand out what we already merged; the refill happens
                    // on the next call.
                    break;
                }
                if !self.refill(shard)? {
                    return Err(AtcError::Format(format!(
                        "shard {shard} ended after {} of {} store addresses",
                        self.produced, self.manifest.count
                    )));
                }
            }
            let buf = &mut self.bufs[shard];
            let take = (len - self.run_off)
                .min((TARGET - self.merged.len()) as u64)
                .min(buf.available() as u64) as usize;
            self.merged
                .extend_from_slice(&buf.vals[buf.head..buf.head + take]);
            buf.head += take;
            self.run_off += take as u64;
        }
        if self.merged.is_empty() {
            // Unreachable for a validated track (run lengths sum to the
            // manifest count, and the caller checked addresses remain);
            // kept as a hard error rather than an index panic.
            return Err(AtcError::Format(format!(
                "interleave track ended after {} of {} store addresses",
                self.produced, self.manifest.count
            )));
        }
        Ok(())
    }

    /// Zips whole rotations (one value per shard, in rotation order) into
    /// the flat merged buffer: `m = min(values buffered per shard)`
    /// rotations at a time — frame-sized in the steady state — capped by
    /// the rotations remaining in the store.
    fn refill_rotation_zipper(&mut self) -> Result<()> {
        let shard_count = self.shards.len();
        let mut m = usize::MAX;
        for shard in 0..shard_count {
            while self.bufs[shard].is_empty() {
                if !self.refill(shard)? {
                    return Err(AtcError::Format(format!(
                        "shard {shard} ended after {} of {} store addresses",
                        self.produced, self.manifest.count
                    )));
                }
            }
            m = m.min(self.bufs[shard].available());
        }
        let remaining_rotations = (self.manifest.count - self.produced) / shard_count as u64;
        let m = m.min(remaining_rotations.min(usize::MAX as u64) as usize);
        debug_assert!(m >= 1, "caller checked a full rotation remains");
        let Self {
            bufs,
            merged,
            merged_pos,
            ..
        } = self;
        merged.clear();
        merged.resize(m * shard_count, 0);
        *merged_pos = 0;
        // Strided transpose: each shard's slice is read sequentially and
        // scattered to its rotation lane in one pass.
        for (s, buf) in bufs.iter_mut().enumerate() {
            let slice = &buf.vals[buf.head..buf.head + m];
            let mut idx = s;
            for &v in slice {
                merged[idx] = v;
                idx += shard_count;
            }
            buf.head += m;
        }
        Ok(())
    }

    /// Confirms every shard is exactly drained once the manifest's count
    /// has been handed out: leftover data means the manifest undercounts
    /// (the mirror of the "ended early" checks), and silently dropping
    /// it would hide tampering or truncated-manifest bugs.
    fn verify_drained(&mut self) -> Result<()> {
        if self.end_verified {
            return Ok(());
        }
        for shard in 0..self.shards.len() {
            if !self.bufs[shard].is_empty() || self.refill(shard)? {
                return Err(AtcError::Format(format!(
                    "shard {shard} holds addresses beyond the manifest count {}",
                    self.manifest.count
                )));
            }
        }
        self.end_verified = true;
        Ok(())
    }

    /// Pulls the next frame of `shard` into its merge buffer; `Ok(false)`
    /// at that shard's clean end.
    fn refill(&mut self, shard: usize) -> Result<bool> {
        // Empty frames are legal in the format (never written by the
        // store): keep pulling so one never masquerades as end-of-shard.
        loop {
            match self.shards[shard].next_frame()? {
                Some(frame) => {
                    self.bufs[shard].push_frame(frame);
                    if !self.bufs[shard].is_empty() {
                        return Ok(true);
                    }
                }
                None => return Ok(false),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{AtcStore, StoreOptions};
    use atc_core::{AtcOptions, LossyConfig, Mode};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("atc-store-r-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn opts(shards: usize, policy: ShardPolicy, threads: usize) -> StoreOptions {
        StoreOptions {
            shards,
            policy,
            atc: AtcOptions {
                codec: "bzip".into(),
                buffer: 500,
                threads,
            },
            max_buffered_bytes: None,
        }
    }

    #[test]
    fn round_robin_merged_read_is_exact() {
        let addrs: Vec<u64> = (0..7001u64).map(|i| i.wrapping_mul(0x9E37)).collect();
        for shards in [1usize, 2, 5] {
            let root = tmp(&format!("rr-{shards}"));
            let mut s = AtcStore::create(
                &root,
                Mode::Lossless,
                opts(shards, ShardPolicy::RoundRobin, 1),
            )
            .unwrap();
            s.code_all(addrs.iter().copied()).unwrap();
            s.finish().unwrap();
            let mut r = StoreReader::open(&root).unwrap();
            assert_eq!(r.shards(), shards);
            assert_eq!(r.decode_all().unwrap(), addrs, "shards={shards}");
            assert_eq!(r.decode().unwrap(), None, "end is sticky");
            std::fs::remove_dir_all(&root).unwrap();
        }
    }

    #[test]
    fn addr_range_merged_read_replays_exact_interleave() {
        // Two regions interleaved; addr-range routing splits them apart,
        // and the recorded interleave track zips them back in the exact
        // arrival order — in both the batched and stepwise merge modes.
        let root = tmp("ar");
        let mut s = AtcStore::create(
            &root,
            Mode::Lossless,
            opts(2, ShardPolicy::AddressRange { shift: 16 }, 1),
        )
        .unwrap();
        let mut expect = Vec::new();
        for i in 0..2000u64 {
            let a = i * 8; // region 0
            let b = (1 << 16) + i * 8; // region 1
            s.code(a).unwrap();
            s.code(b).unwrap();
            expect.push(a);
            expect.push(b);
        }
        s.finish().unwrap();
        let mut r = StoreReader::open(&root).unwrap();
        assert!(r.merge_is_exact(), "recorded track makes the merge exact");
        assert_eq!(r.decode_all().unwrap(), expect);
        assert_eq!(r.decode().unwrap(), None, "end is sticky");
        let mut stepwise = StoreReader::open(&root).unwrap();
        stepwise.merge_batching(false);
        assert_eq!(stepwise.decode_all().unwrap(), expect);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn thread_id_merged_read_replays_exact_interleave() {
        let root = tmp("tid-exact");
        let mut s =
            AtcStore::create(&root, Mode::Lossless, opts(3, ShardPolicy::ThreadId, 1)).unwrap();
        let mut expect = Vec::new();
        for i in 0..500u64 {
            // Bursty keys so runs have varied lengths.
            let key = (i / 7) % 5;
            let addr = 0x9000 + i * 8;
            s.code_from(key, addr).unwrap();
            expect.push(addr);
        }
        s.finish().unwrap();
        let mut r = StoreReader::open(&root).unwrap();
        assert!(r.merge_is_exact());
        assert_eq!(r.decode_all().unwrap(), expect);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn old_manifest_without_track_reads_as_concatenation() {
        // Strip the interleave section and rewind the version — the
        // fixture for stores packed before the track existed. The reader
        // must fall back to shard concatenation (each shard exact, global
        // order lost) instead of refusing the store.
        let root = tmp("old-manifest");
        let mut s = AtcStore::create(
            &root,
            Mode::Lossless,
            opts(2, ShardPolicy::AddressRange { shift: 16 }, 1),
        )
        .unwrap();
        let mut lo = Vec::new();
        let mut hi = Vec::new();
        for i in 0..1500u64 {
            let a = i * 8; // region 0 -> shard 0
            let b = (1 << 16) + i * 8; // region 1 -> shard 1
            s.code(a).unwrap();
            s.code(b).unwrap();
            lo.push(a);
            hi.push(b);
        }
        s.finish().unwrap();
        let path = root.join(STORE_MANIFEST_FILE);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("interleave="), "new manifests carry a track");
        let old: String = text
            .lines()
            .filter(|l| !l.starts_with("interleave="))
            .map(|l| {
                if l.starts_with("version=") {
                    "version=1".to_string()
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n")
            + "\n";
        std::fs::write(&path, old).unwrap();
        let mut r = StoreReader::open(&root).unwrap();
        assert!(!r.merge_is_exact(), "track-less store merges by shard");
        let mut expect = lo.clone();
        expect.extend(&hi);
        assert_eq!(r.decode_all().unwrap(), expect);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn per_shard_cursors_see_their_substreams() {
        let root = tmp("cursors");
        let mut s =
            AtcStore::create(&root, Mode::Lossless, opts(3, ShardPolicy::ThreadId, 1)).unwrap();
        for i in 0..300u64 {
            s.code_from(i % 3, 0x4000 + i).unwrap();
        }
        s.finish().unwrap();
        let mut r = StoreReader::open(&root).unwrap();
        for shard in 0..3 {
            let expect: Vec<u64> = (0..300u64)
                .filter(|i| i % 3 == shard)
                .map(|i| 0x4000 + i)
                .collect();
            assert_eq!(r.shard(shard as usize).decode_all().unwrap(), expect);
        }
        // into_shards hands out independent readers.
        let r2 = StoreReader::open(&root).unwrap();
        let mut shards = r2.into_shards();
        assert_eq!(shards.len(), 3);
        assert_eq!(shards[1].decode_all().unwrap().len(), 100);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn range_reads_match_linear_slices_for_every_policy() {
        // The acceptance shape: for each shard policy, read_range(A..B)
        // must be byte-identical to the same slice of the full linear
        // merged decode — including ranges starting mid-frame, mid-run,
        // and mid-rotation.
        let policies = [
            ("rr", ShardPolicy::RoundRobin),
            ("ar", ShardPolicy::AddressRange { shift: 14 }),
            ("tid", ShardPolicy::ThreadId),
        ];
        for (tag, policy) in policies {
            let root = tmp(&format!("range-{tag}"));
            let mut s = AtcStore::create(&root, Mode::Lossless, opts(3, policy, 1)).unwrap();
            for i in 0..20_000u64 {
                // Bursty keys and spread addresses so runs and ranges vary.
                s.code_from((i / 11) % 7, (i % 5) << 14 | (i * 8)).unwrap();
            }
            s.finish().unwrap();

            let mut linear = StoreReader::open(&root).unwrap();
            let expect = linear.decode_all().unwrap();

            let mut r = StoreReader::open(&root).unwrap();
            let count = expect.len() as u64;
            let ranges = [
                (0u64, 100u64),
                (1, 502),
                (777, 3003),
                (count / 2 - 1, count / 2 + 1777),
                (count - 499, count),
                (count, count),
            ];
            for (a, b) in ranges {
                let got = r.read_range(a..b).unwrap();
                assert_eq!(got, &expect[a as usize..b as usize], "{tag} range {a}..{b}");
            }
            // Ranges can revisit earlier positions (the reader re-seeks).
            assert_eq!(r.read_range(5..25).unwrap(), &expect[5..25], "{tag}");
            let inverted = std::ops::Range { start: 3, end: 1 };
            assert!(r.read_range(inverted).is_err(), "{tag} inverted range");
            assert!(r.read_range(0..count + 1).is_err(), "{tag} out of bounds");
            std::fs::remove_dir_all(&root).unwrap();
        }
    }

    #[test]
    fn range_reads_work_on_trackless_concat_stores() {
        // Old-manifest fallback: strip the track, rewind the version, and
        // range-read the concatenation order.
        let root = tmp("range-concat");
        let mut s = AtcStore::create(
            &root,
            Mode::Lossless,
            opts(2, ShardPolicy::AddressRange { shift: 16 }, 1),
        )
        .unwrap();
        for i in 0..3000u64 {
            s.code(i * 8).unwrap();
            s.code((1 << 16) + i * 8).unwrap();
        }
        s.finish().unwrap();
        let path = root.join(STORE_MANIFEST_FILE);
        let text = std::fs::read_to_string(&path).unwrap();
        let old: String = text
            .lines()
            .filter(|l| !l.starts_with("interleave="))
            .map(|l| {
                if l.starts_with("version=") {
                    "version=1".to_string()
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n")
            + "\n";
        std::fs::write(&path, old).unwrap();

        let mut linear = StoreReader::open(&root).unwrap();
        let expect = linear.decode_all().unwrap();
        let mut r = StoreReader::open(&root).unwrap();
        for (a, b) in [(0u64, 64u64), (2999, 3001), (3100, 5500), (5999, 6000)] {
            assert_eq!(
                r.read_range(a..b).unwrap(),
                &expect[a as usize..b as usize],
                "range {a}..{b}"
            );
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn seek_to_then_decode_continues_to_end() {
        let root = tmp("seek-continue");
        let mut s =
            AtcStore::create(&root, Mode::Lossless, opts(3, ShardPolicy::ThreadId, 1)).unwrap();
        for i in 0..9000u64 {
            s.code_from(i % 4, 0x1000 + i * 16).unwrap();
        }
        s.finish().unwrap();
        let mut linear = StoreReader::open(&root).unwrap();
        let expect = linear.decode_all().unwrap();

        let mut r = StoreReader::open(&root).unwrap();
        r.seek_to(4321).unwrap();
        let rest = r.decode_all().unwrap();
        assert_eq!(rest, &expect[4321..]);
        // Clean end after a seek still passes the drain check.
        assert_eq!(r.decode().unwrap(), None);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn lossy_store_roundtrips_stationary_trace() {
        // Lossy shards: each shard sees a stationary sub-stream, so every
        // shard collapses to imitations — the store composes with the
        // paper's phase machinery unchanged.
        let root = tmp("lossy");
        let interval: Vec<u64> = (0..200u64).map(|i| i * 64).collect();
        let cfg = LossyConfig {
            interval_len: 200,
            ..LossyConfig::default()
        };
        let mut s = AtcStore::create(
            &root,
            Mode::Lossy(cfg),
            StoreOptions {
                shards: 2,
                policy: ShardPolicy::RoundRobin,
                atc: AtcOptions {
                    codec: "store".into(),
                    buffer: 128,
                    threads: 1,
                },
                max_buffered_bytes: None,
            },
        )
        .unwrap();
        let mut expect = Vec::new();
        for _ in 0..8 {
            s.code_all(interval.iter().copied()).unwrap();
            expect.extend(&interval);
        }
        let stats = s.finish().unwrap();
        assert_eq!(stats.count, 1600);
        let mut r = StoreReader::open(&root).unwrap();
        assert_eq!(r.decode_all().unwrap(), expect);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn open_rejects_missing_or_bad_manifest() {
        assert!(StoreReader::open("/nonexistent/store/root").is_err());
        let root = tmp("badpolicy");
        let s = AtcStore::create(&root, Mode::Lossless, StoreOptions::default()).unwrap();
        s.finish().unwrap();
        let path = root.join(STORE_MANIFEST_FILE);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("round-robin", "mystery")).unwrap();
        assert!(StoreReader::open(&root).is_err());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn undercounted_manifest_detected() {
        // Tamper the manifest to claim one *fewer* address per shard (sum
        // check still passes): open must reject the manifest/meta
        // disagreement rather than let the tail values be dropped.
        let root = tmp("undercount");
        let mut s =
            AtcStore::create(&root, Mode::Lossless, opts(2, ShardPolicy::RoundRobin, 1)).unwrap();
        s.code_all(0..10u64).unwrap();
        s.finish().unwrap();
        let path = root.join(STORE_MANIFEST_FILE);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(
            &path,
            text.replace("count=10", "count=8")
                .replace("shard_counts=5,5", "shard_counts=4,4"),
        )
        .unwrap();
        assert!(StoreReader::open(&root).is_err());

        // Deeper tamper: shard metas adjusted to match the shrunken
        // manifest, so open's cross-check passes — the end-of-store drain
        // check must still refuse to silently drop the real tail data.
        for shard in 0..2 {
            let meta_path = root.join(shard_dir_name(shard)).join("meta");
            let meta_text = std::fs::read_to_string(&meta_path).unwrap();
            std::fs::write(&meta_path, meta_text.replace("count=5", "count=4")).unwrap();
        }
        let mut r = StoreReader::open(&root).unwrap();
        assert!(r.decode_all().is_err());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn truncated_shard_detected() {
        // Tamper with the manifest to claim one more address than stored:
        // open must reject the manifest/meta disagreement.
        let root = tmp("truncated");
        let mut s =
            AtcStore::create(&root, Mode::Lossless, opts(2, ShardPolicy::RoundRobin, 1)).unwrap();
        s.code_all(0..10u64).unwrap();
        s.finish().unwrap();
        let path = root.join(STORE_MANIFEST_FILE);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(
            &path,
            text.replace("count=10", "count=11")
                .replace("shard_counts=5,5", "shard_counts=6,5"),
        )
        .unwrap();
        assert!(StoreReader::open(&root).is_err());

        // Deeper tamper: shard 0's meta inflated to match, so open's
        // cross-check passes — the shard reader's own end-of-trace check
        // must still catch the shortfall mid-merge.
        let meta_path = root.join(shard_dir_name(0)).join("meta");
        let meta_text = std::fs::read_to_string(&meta_path).unwrap();
        std::fs::write(&meta_path, meta_text.replace("count=5", "count=6")).unwrap();
        let mut r = StoreReader::open(&root).unwrap();
        assert!(r.decode_all().is_err());
        std::fs::remove_dir_all(&root).unwrap();
    }
}
