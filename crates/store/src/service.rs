//! A `Send`-able request-service facade over the store.
//!
//! [`StoreReader`] is a stateful cursor: it owns per-shard readers, a
//! merged buffer, and a position, so sharing one across concurrent
//! requests would serialize everything behind a mutex *and* make every
//! request pay for the previous one's cursor. [`StoreService`] flips the
//! ownership: it holds only the validated root, the parsed manifest, and
//! the [`ReadOptions`] template, and opens a **fresh reader per request**.
//! That makes the service trivially `Send + Sync` (hand one `Arc` to N
//! connection tasks) while the shared
//! [`SegmentCache`](ReadOptions::segment_cache) keeps repeat opens cheap:
//! the segment a request decodes to reach its range is a cache hit for
//! every later request near it, across connections.
//!
//! Responses are produced in *chunks* through a callback rather than one
//! flat vector, so a network server can bound its decoded-but-unsent
//! memory (its send window) no matter how large the requested range is.

use std::ops::Range;
use std::path::{Path, PathBuf};

use atc_core::format::StoreManifest;
use atc_core::{AtcError, ReadOptions, Result};

use crate::reader::StoreReader;

/// A shared, `Send + Sync` facade that answers range and shard-stream
/// queries against one store root (see the module docs for the
/// reader-per-request design).
///
/// # Examples
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use atc_core::Mode;
/// use atc_store::{AtcStore, StoreOptions, StoreService};
///
/// let root = std::env::temp_dir().join("atc-store-service-doc");
/// # let _ = std::fs::remove_dir_all(&root);
/// let mut store = AtcStore::create(&root, Mode::Lossless, StoreOptions::default())?;
/// store.code_all(0..5_000u64)?;
/// store.finish()?;
///
/// let service = StoreService::open(&root)?;
/// let mut got = Vec::new();
/// service.read_range_chunked(10..20, 4, |chunk| {
///     got.extend_from_slice(chunk);
///     Ok(())
/// })?;
/// assert_eq!(got, (10..20u64).collect::<Vec<_>>());
/// # std::fs::remove_dir_all(&root)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct StoreService {
    root: PathBuf,
    options: ReadOptions,
    manifest: StoreManifest,
    exact: bool,
}

impl StoreService {
    /// Opens a service over `root` with default [`ReadOptions`].
    ///
    /// # Errors
    ///
    /// Same failure modes as [`StoreService::open_with`].
    pub fn open<P: AsRef<Path>>(root: P) -> Result<Self> {
        Self::open_with(root, ReadOptions::default())
    }

    /// Opens a service over `root`; `options` is the template every
    /// per-request reader opens with (share a
    /// [`segment_cache`](ReadOptions::segment_cache) here to make
    /// concurrent requests reuse each other's decode work).
    ///
    /// The store is fully opened once up front, so a bad manifest or
    /// unreadable shard fails here, not on the first request.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`StoreReader::open_with`].
    pub fn open_with<P: AsRef<Path>>(root: P, options: ReadOptions) -> Result<Self> {
        let root = root.as_ref().to_path_buf();
        let probe = StoreReader::open_with(&root, options.clone())?;
        let exact = probe.merge_is_exact();
        let manifest = probe.manifest().clone();
        Ok(Self {
            root,
            options,
            manifest,
            exact,
        })
    }

    /// The store manifest as validated at open.
    pub fn manifest(&self) -> &StoreManifest {
        &self.manifest
    }

    /// Whether merged reads replay the exact global arrival order (see
    /// [`StoreReader::merge_is_exact`]).
    pub fn merge_is_exact(&self) -> bool {
        self.exact
    }

    /// The store root this service answers for.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Reads the half-open merged range `range`, handing the values to
    /// `sink` in chunks of at most `chunk_values` (clamped to at least
    /// 1). The concatenation of every chunk equals
    /// [`StoreReader::read_range`] over the same range; a `sink` error
    /// aborts the read and propagates.
    ///
    /// # Errors
    ///
    /// Fails on inverted or out-of-bounds ranges (reported *before* any
    /// chunk is produced, so a server can still answer with a clean
    /// protocol error), on shard read errors, and on `sink` errors.
    pub fn read_range_chunked<F>(
        &self,
        range: Range<u64>,
        chunk_values: usize,
        mut sink: F,
    ) -> Result<()>
    where
        F: FnMut(&[u64]) -> Result<()>,
    {
        if range.start > range.end || range.end > self.manifest.count {
            return Err(AtcError::Format(format!(
                "range {}..{} does not fit the store's {} addresses",
                range.start, range.end, self.manifest.count
            )));
        }
        let chunk_values = chunk_values.max(1);
        let mut reader = StoreReader::open_with(&self.root, self.options.clone())?;
        reader.seek_to(range.start)?;
        let mut remaining = range.end - range.start;
        let mut chunk = Vec::with_capacity(chunk_values.min(remaining as usize + 1));
        while remaining > 0 {
            let v = reader.decode()?.ok_or_else(|| {
                AtcError::Format(format!(
                    "store ended with {remaining} of {}..{} unread",
                    range.start, range.end
                ))
            })?;
            chunk.push(v);
            remaining -= 1;
            if chunk.len() == chunk_values {
                sink(&chunk)?;
                chunk.clear();
            }
        }
        if !chunk.is_empty() {
            sink(&chunk)?;
        }
        Ok(())
    }

    /// Streams shard `shard`'s sub-stream from its value position `from`
    /// to its end, in chunks of at most `chunk_values` (clamped to at
    /// least 1). `from == 0` never seeks, so lossy shards (which are not
    /// frame-addressable) still stream whole; `from > 0` uses the shard's
    /// sidecar seek and fails on lossy traces like [`atc_core::AtcReader::seek`].
    ///
    /// # Errors
    ///
    /// Fails on unknown shards, on `from` past the shard's count, on
    /// seek/decode errors, and on `sink` errors.
    pub fn stream_shard_chunked<F>(
        &self,
        shard: usize,
        from: u64,
        chunk_values: usize,
        mut sink: F,
    ) -> Result<()>
    where
        F: FnMut(&[u64]) -> Result<()>,
    {
        let counts = &self.manifest.shard_counts;
        if shard >= counts.len() {
            return Err(AtcError::Format(format!(
                "no shard {shard} in a {}-shard store",
                counts.len()
            )));
        }
        if from > counts[shard] {
            return Err(AtcError::Format(format!(
                "offset {from} is past shard {shard}'s {} addresses",
                counts[shard]
            )));
        }
        let chunk_values = chunk_values.max(1);
        let mut reader = StoreReader::open_with(&self.root, self.options.clone())?;
        let cursor = reader.shard(shard);
        if from > 0 {
            let buffer = cursor.meta().buffer.max(1);
            cursor.seek(from / buffer)?;
            // Discard the in-frame remainder to land exactly on `from`.
            for consumed in 0..(from % buffer) {
                cursor.decode()?.ok_or_else(|| {
                    AtcError::Format(format!(
                        "shard {shard} ended while seeking to its address {}",
                        from - (from % buffer) + consumed
                    ))
                })?;
            }
        }
        let mut chunk = Vec::with_capacity(chunk_values);
        // Bulk-copy whole decoded frames into the chunk; a frame is the
        // natural unit the shard reader already hands out.
        while let Some(frame) = cursor.next_frame()? {
            let mut rest: &[u64] = frame;
            while !rest.is_empty() {
                let take = (chunk_values - chunk.len()).min(rest.len());
                chunk.extend_from_slice(&rest[..take]);
                rest = &rest[take..];
                if chunk.len() == chunk_values {
                    sink(&chunk)?;
                    chunk.clear();
                }
            }
        }
        if !chunk.is_empty() {
            sink(&chunk)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ShardPolicy;
    use crate::writer::{AtcStore, StoreOptions};
    use atc_core::{AtcOptions, Mode};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("atc-store-svc-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn build(root: &Path, shards: usize, policy: ShardPolicy, n: u64) -> Vec<u64> {
        let mut s = AtcStore::create(
            root,
            Mode::Lossless,
            StoreOptions {
                shards,
                policy,
                atc: AtcOptions {
                    codec: "lz".into(),
                    buffer: 250,
                    threads: 1,
                },
                max_buffered_bytes: None,
            },
        )
        .unwrap();
        let mut addrs = Vec::new();
        for i in 0..n {
            let a = (i % 3) << 14 | (i * 8);
            s.code_from((i / 13) % 5, a).unwrap();
            addrs.push(a);
        }
        s.finish().unwrap();
        addrs
    }

    #[test]
    fn service_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StoreService>();
    }

    #[test]
    fn chunked_range_matches_reader_read_range() {
        let root = tmp("range");
        build(&root, 3, ShardPolicy::ThreadId, 8000);
        let service = StoreService::open(&root).unwrap();
        let mut reader = StoreReader::open(&root).unwrap();
        for (a, b) in [(0u64, 1u64), (0, 500), (777, 3003), (7999, 8000), (42, 42)] {
            let expect = reader.read_range(a..b).unwrap();
            let mut got = Vec::new();
            let mut chunks = 0usize;
            service
                .read_range_chunked(a..b, 100, |c| {
                    assert!(c.len() <= 100 && !c.is_empty());
                    chunks += 1;
                    got.extend_from_slice(c);
                    Ok(())
                })
                .unwrap();
            assert_eq!(got, expect, "range {a}..{b}");
            assert_eq!(chunks, (b - a).div_ceil(100) as usize, "range {a}..{b}");
        }
    }

    #[test]
    fn range_errors_before_any_chunk() {
        let root = tmp("range-err");
        build(&root, 2, ShardPolicy::RoundRobin, 100);
        let service = StoreService::open(&root).unwrap();
        // The inverted range is deliberate: it must be rejected.
        #[allow(clippy::reversed_empty_ranges)]
        for bad in [5..3u64, 50..101, 101..101] {
            let mut called = false;
            let err = service.read_range_chunked(bad.clone(), 8, |_| {
                called = true;
                Ok(())
            });
            assert!(err.is_err(), "range {bad:?}");
            assert!(!called, "no chunk before validation, range {bad:?}");
        }
        // A sink error aborts and propagates.
        let err = service
            .read_range_chunked(0..100, 8, |_| Err(AtcError::Format("sink says no".into())))
            .unwrap_err();
        assert!(err.to_string().contains("sink says no"));
    }

    #[test]
    fn chunked_shard_stream_matches_per_shard_cursor() {
        let root = tmp("shard");
        build(&root, 3, ShardPolicy::ThreadId, 6000);
        let service = StoreService::open(&root).unwrap();
        for shard in 0..3usize {
            let mut r = StoreReader::open(&root).unwrap();
            let expect = r.shard(shard).decode_all().unwrap();
            for from in [0u64, 1, 249, 250, 251, expect.len() as u64] {
                let mut got = Vec::new();
                service
                    .stream_shard_chunked(shard, from, 64, |c| {
                        got.extend_from_slice(c);
                        Ok(())
                    })
                    .unwrap();
                assert_eq!(got, &expect[from as usize..], "shard {shard} from {from}");
            }
        }
    }

    #[test]
    fn shard_stream_rejects_bad_coordinates() {
        let root = tmp("shard-err");
        build(&root, 2, ShardPolicy::RoundRobin, 100);
        let service = StoreService::open(&root).unwrap();
        assert!(service.stream_shard_chunked(2, 0, 8, |_| Ok(())).is_err());
        assert!(service.stream_shard_chunked(0, 51, 8, |_| Ok(())).is_err());
        // from == shard count: legal, empty.
        let mut any = false;
        service
            .stream_shard_chunked(0, 50, 8, |_| {
                any = true;
                Ok(())
            })
            .unwrap();
        assert!(!any);
    }

    #[test]
    fn open_validates_up_front() {
        assert!(StoreService::open("/nonexistent/store/root").is_err());
        let root = tmp("meta");
        build(&root, 2, ShardPolicy::RoundRobin, 10);
        let service = StoreService::open(&root).unwrap();
        assert_eq!(service.manifest().count, 10);
        assert!(service.merge_is_exact());
        assert_eq!(service.root(), root.as_path());
    }
}
