//! The sharded store writer.

use std::fs;
use std::path::{Path, PathBuf};

use std::sync::Arc;

use atc_codec::{ByteBudget, DEFAULT_SEGMENT_SIZE, IN_FLIGHT_PER_WORKER};
use atc_core::format::{
    shard_dir_name, InterleaveTrack, StoreManifest, STORE_FORMAT_VERSION, STORE_MANIFEST_FILE,
};
use atc_core::{AtcError, AtcOptions, AtcStats, AtcWriter, Mode, Result};
use atc_engine::{Engine, EngineStats};

use crate::policy::ShardPolicy;

/// Tuning knobs for [`AtcStore::create`].
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Number of shard trace directories (must be at least 1).
    pub shards: usize,
    /// How addresses are routed across shards (recorded in the manifest,
    /// together with the interleave track that makes the merged read-back
    /// order-exact for the data-dependent policies).
    pub policy: ShardPolicy,
    /// Per-trace options (codec, bytesort buffer). `atc.threads` is the
    /// store's *total* compression parallelism: **all shard writers feed
    /// one shared work-stealing engine** with that many workers, so a
    /// shard with nothing queued automatically donates its capacity to a
    /// busy one (no static per-shard split). Each shard writer keeps the
    /// full in-flight window; the engine's worker count is the actual
    /// concurrency cap.
    pub atc: AtcOptions,
    /// Cap on buffered pipeline bytes summed **across all shard
    /// writers** (raw lossless segments handed to the engine, queued
    /// lossy intervals). Per-writer windows alone compound to
    /// `shards × threads × 2` payloads; this shared gate keeps skewed
    /// routing — where one busy shard could otherwise fill every
    /// window — under one bound. `None` keeps exactly that compound
    /// bound as the default cap, so untouched configurations behave as
    /// before; the gate only changes behavior when set tighter. Ignored
    /// when `atc.threads <= 1` (inline writers buffer at most one
    /// payload each).
    pub max_buffered_bytes: Option<u64>,
}

impl Default for StoreOptions {
    /// One round-robin shard with [`AtcOptions::default`] — behaves like
    /// a plain [`AtcWriter`] wrapped in a store directory.
    fn default() -> Self {
        Self {
            shards: 1,
            policy: ShardPolicy::default(),
            atc: AtcOptions::default(),
            max_buffered_bytes: None,
        }
    }
}

/// Statistics returned by [`AtcStore::finish`].
#[derive(Debug, Clone)]
pub struct StoreStats {
    /// Addresses accepted across all shards.
    pub count: u64,
    /// Per-shard compression statistics, shard 0 first.
    pub shards: Vec<AtcStats>,
    /// Total size of the store (all shard directories + manifest).
    pub compressed_bytes: u64,
    /// Counters of the engine the shard writers fed (None when the store
    /// ran fully inline with `threads <= 1`). `steals > 0` under skewed
    /// routing is the observable form of shard-to-shard capacity
    /// donation.
    pub engine: Option<EngineStats>,
    /// High-water mark of pipeline bytes buffered across all shard
    /// writers, as seen by the shared byte-budget gate
    /// ([`StoreOptions::max_buffered_bytes`]; None when the store ran
    /// inline and no gate existed).
    pub peak_buffered_bytes: Option<u64>,
}

impl StoreStats {
    /// Average compressed bits per address across the whole store.
    pub fn bits_per_address(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.compressed_bytes as f64 * 8.0 / self.count as f64
        }
    }
}

/// A sharded multi-trace store writer: one root directory holding `N`
/// complete ATC trace directories (`shard-000/`, `shard-001/`, …) plus a
/// `store-manifest` recording how the stream was routed.
///
/// Every shard is an ordinary trace — any shard directory opens with
/// [`atc_core::AtcReader`] — so the store composes with everything the
/// single-trace layer already does: lossless or lossy mode, any codec,
/// and the parallel write pipeline. All shard writers submit their
/// segment/classification/chunk tasks to **one shared engine** (created
/// from `atc.threads`, or injected via
/// [`AtcStore::create_with_engine`]), so the thread budget is pooled:
/// an idle shard's capacity is stolen by a busy one instead of sitting
/// behind a static per-shard split.
///
/// # Examples
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use atc_core::Mode;
/// use atc_store::{AtcStore, ShardPolicy, StoreOptions, StoreReader};
///
/// let root = std::env::temp_dir().join("atc-store-doc");
/// # let _ = std::fs::remove_dir_all(&root);
/// let mut store = AtcStore::create(
///     &root,
///     Mode::Lossless,
///     StoreOptions { shards: 3, ..StoreOptions::default() },
/// )?;
/// store.code_all((0..1000u64).map(|i| i * 64))?;
/// let stats = store.finish()?;
/// assert_eq!(stats.count, 1000);
///
/// let mut r = StoreReader::open(&root)?;
/// assert_eq!(r.decode_all()?, (0..1000u64).map(|i| i * 64).collect::<Vec<_>>());
/// # std::fs::remove_dir_all(&root)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct AtcStore {
    root: PathBuf,
    policy: ShardPolicy,
    writers: Vec<AtcWriter>,
    /// The engine every shard writer feeds (None = fully inline).
    engine: Option<Engine>,
    /// The shared byte-budget gate all shard writers draw from (None =
    /// fully inline, nothing buffered beyond one payload per writer).
    budget: Option<Arc<ByteBudget>>,
    /// Routing decisions as RLE runs — recorded only for the
    /// data-dependent policies; round-robin's rotation is synthesized by
    /// the reader, so recording it would cost one run per address for
    /// nothing.
    track: InterleaveTrack,
    /// Global arrival index of the next address.
    seq: u64,
}

impl AtcStore {
    /// Creates a store root with `options.shards` shard trace
    /// directories, all feeding one engine with `options.atc.threads`
    /// workers (the process-wide engine, grown to that count).
    ///
    /// # Errors
    ///
    /// Fails if `shards` is zero, the root already contains a store, or
    /// any shard writer cannot be created (same failure modes as
    /// [`AtcWriter::with_options`]).
    pub fn create<P: AsRef<Path>>(root: P, mode: Mode, options: StoreOptions) -> Result<Self> {
        let engine = (options.atc.threads > 1).then(|| Engine::global_with(options.atc.threads));
        Self::build(root, mode, options, engine)
    }

    /// Like [`AtcStore::create`], but every shard writer submits to the
    /// given `engine` — the injection point for tests that pin worker
    /// counts or read isolated steal counters.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`AtcStore::create`].
    pub fn create_with_engine<P: AsRef<Path>>(
        root: P,
        mode: Mode,
        options: StoreOptions,
        engine: Engine,
    ) -> Result<Self> {
        Self::build(root, mode, options, Some(engine))
    }

    fn build<P: AsRef<Path>>(
        root: P,
        mode: Mode,
        options: StoreOptions,
        engine: Option<Engine>,
    ) -> Result<Self> {
        let StoreOptions {
            shards,
            policy,
            atc,
            max_buffered_bytes,
        } = options;
        if shards == 0 {
            return Err(AtcError::Format("store needs at least one shard".into()));
        }
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        if root.join(STORE_MANIFEST_FILE).exists() {
            return Err(AtcError::Format(format!(
                "directory {} already contains a store",
                root.display()
            )));
        }
        // No manifest but shard directories present means an interrupted
        // pack: silently reusing the root could leave stale shards from
        // the aborted run next to (or beyond) the new ones. Refuse, like
        // the single-trace writer refuses a populated trace directory.
        for entry in fs::read_dir(&root)? {
            let name = entry?.file_name();
            if name.to_string_lossy().starts_with("shard-") {
                return Err(AtcError::Format(format!(
                    "directory {} holds leftover shard directories (interrupted pack?); \
                     remove them or use a fresh root",
                    root.display()
                )));
            }
        }
        // One shared byte gate for every shard writer. The default cap is
        // exactly the old compound bound (shards × threads × 2 payloads,
        // where a payload is a raw segment in lossless mode and an
        // L-address interval in lossy mode), so stores that never set
        // `max_buffered_bytes` keep their previous buffering behavior —
        // the gate only bites when configured tighter.
        let budget = engine.as_ref().map(|_| {
            let payload = match &mode {
                Mode::Lossless => DEFAULT_SEGMENT_SIZE as u64,
                Mode::Lossy(cfg) => cfg.interval_len as u64 * 8,
            };
            let old_bound = shards as u64
                * atc.threads.max(1) as u64
                * IN_FLIGHT_PER_WORKER as u64
                * payload.max(1);
            Arc::new(ByteBudget::new(max_buffered_bytes.unwrap_or(old_bound)))
        });
        let writers = (0..shards)
            .map(|i| {
                let shard_options = AtcOptions {
                    codec: atc.codec.clone(),
                    buffer: atc.buffer,
                    threads: atc.threads,
                };
                let dir = root.join(shard_dir_name(i));
                match (&engine, &budget) {
                    // One engine and one byte budget for all shards: the
                    // whole thread budget is a shared pool, and so is the
                    // buffered-memory bound.
                    (Some(e), Some(b)) => AtcWriter::with_options_engine_budget(
                        dir,
                        mode.clone(),
                        shard_options,
                        e.clone(),
                        Arc::clone(b),
                    ),
                    (Some(e), None) => {
                        AtcWriter::with_options_engine(dir, mode.clone(), shard_options, e.clone())
                    }
                    (None, _) => AtcWriter::with_options(dir, mode.clone(), shard_options),
                }
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Self {
            root,
            policy,
            writers,
            engine,
            budget,
            track: InterleaveTrack::default(),
            seq: 0,
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.writers.len()
    }

    /// The routing policy.
    pub fn policy(&self) -> ShardPolicy {
        self.policy
    }

    /// Addresses accepted so far.
    pub fn count(&self) -> u64 {
        self.seq
    }

    /// Counters of the shared engine the shard writers feed (None when
    /// the store runs fully inline).
    pub fn engine_stats(&self) -> Option<EngineStats> {
        self.engine.as_ref().map(Engine::stats)
    }

    /// Routes one address (stream key 0) to its shard and compresses it.
    ///
    /// # Errors
    ///
    /// Propagates I/O and codec errors from the shard writer.
    pub fn code(&mut self, addr: u64) -> Result<()> {
        self.code_from(0, addr)
    }

    /// Routes one address carrying an explicit stream `key` (thread id,
    /// core id, …). Only [`ShardPolicy::ThreadId`] inspects the key; the
    /// other policies ignore it.
    ///
    /// # Errors
    ///
    /// Propagates I/O and codec errors from the shard writer.
    pub fn code_from(&mut self, key: u64, addr: u64) -> Result<()> {
        let shard = self.policy.route(self.seq, key, addr, self.writers.len());
        self.writers[shard].code(addr)?;
        // Routing happens here, on the producer, in arrival order — the
        // engine's shard tasks may complete out of order but they never
        // decide routing, so the run record needs no synchronization.
        // Round-robin is skipped: its track is the derivable rotation,
        // and recording it would be one run per address.
        if !self.policy.merge_is_exact() {
            self.track.record(shard as u32);
        }
        self.seq += 1;
        Ok(())
    }

    /// Compresses every value from an iterator (stream key 0).
    ///
    /// # Errors
    ///
    /// Propagates the first error from [`AtcStore::code`].
    pub fn code_all<I: IntoIterator<Item = u64>>(&mut self, values: I) -> Result<()> {
        for v in values {
            self.code(v)?;
        }
        Ok(())
    }

    /// Finishes every shard trace, writes the store manifest, and returns
    /// the aggregate statistics.
    ///
    /// # Errors
    ///
    /// Propagates the first shard writer failure; the manifest is only
    /// written after every shard landed completely.
    pub fn finish(self) -> Result<StoreStats> {
        let mut shard_counts = Vec::with_capacity(self.writers.len());
        let mut shard_stats = Vec::with_capacity(self.writers.len());
        for w in self.writers {
            shard_counts.push(w.count());
            shard_stats.push(w.finish()?);
        }
        // Round-robin stores carry no recorded track (the reader
        // synthesizes the rotation); every other policy ships its RLE
        // interleave so any reader can replay the exact arrival order.
        let interleave = (!self.policy.merge_is_exact()).then_some(self.track);
        let manifest = StoreManifest {
            version: STORE_FORMAT_VERSION,
            policy: self.policy.to_name(),
            count: self.seq,
            shard_counts,
            interleave,
        };
        let manifest_text = manifest.to_text();
        fs::write(self.root.join(STORE_MANIFEST_FILE), &manifest_text)?;
        let compressed_bytes = shard_stats.iter().map(|s| s.compressed_bytes).sum::<u64>()
            + manifest_text.len() as u64;
        Ok(StoreStats {
            count: self.seq,
            shards: shard_stats,
            compressed_bytes,
            engine: self.engine.as_ref().map(Engine::stats),
            peak_buffered_bytes: self.budget.as_ref().map(|b| b.peak()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("atc-store-w-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn creates_shard_layout_and_manifest() {
        let root = tmp("layout");
        let mut s = AtcStore::create(
            &root,
            Mode::Lossless,
            StoreOptions {
                shards: 3,
                policy: ShardPolicy::RoundRobin,
                atc: AtcOptions {
                    codec: "store".into(),
                    buffer: 64,
                    threads: 1,
                },
                max_buffered_bytes: None,
            },
        )
        .unwrap();
        s.code_all(0..100u64).unwrap();
        let stats = s.finish().unwrap();
        assert_eq!(stats.count, 100);
        assert_eq!(stats.shards.len(), 3);
        // Round-robin over 100 addresses: 34 + 33 + 33.
        assert_eq!(stats.shards[0].count, 34);
        assert_eq!(stats.shards[1].count, 33);
        assert_eq!(stats.shards[2].count, 33);
        assert!(stats.engine.is_none(), "inline store runs without engine");
        let manifest =
            StoreManifest::parse(&fs::read_to_string(root.join(STORE_MANIFEST_FILE)).unwrap())
                .unwrap();
        assert_eq!(manifest.policy, "round-robin");
        assert_eq!(manifest.shard_counts, vec![34, 33, 33]);
        for i in 0..3 {
            assert!(root.join(shard_dir_name(i)).join("meta").exists());
        }
        assert!(stats.bits_per_address() > 0.0);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn rejects_zero_shards_and_double_create() {
        let root = tmp("guards");
        assert!(AtcStore::create(
            &root,
            Mode::Lossless,
            StoreOptions {
                shards: 0,
                ..StoreOptions::default()
            }
        )
        .is_err());
        let s = AtcStore::create(&root, Mode::Lossless, StoreOptions::default()).unwrap();
        s.finish().unwrap();
        assert!(AtcStore::create(&root, Mode::Lossless, StoreOptions::default()).is_err());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn rejects_leftover_shards_from_interrupted_pack() {
        // Shard directories but no manifest: an aborted pack. Re-packing
        // (possibly with fewer shards) must refuse rather than leave
        // stale shard dirs beside the new ones.
        let root = tmp("interrupted");
        fs::create_dir_all(root.join(shard_dir_name(2))).unwrap();
        assert!(AtcStore::create(
            &root,
            Mode::Lossless,
            StoreOptions {
                shards: 2,
                ..StoreOptions::default()
            }
        )
        .is_err());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn shared_engine_runs_all_shards() {
        // 5-worker engine over 2 shards: no static split — both writers
        // submit to the same pool and the output matches serial exactly
        // (pinned by the proptests; this exercises the path end to end).
        let root = tmp("budget");
        let mut s = AtcStore::create(
            &root,
            Mode::Lossless,
            StoreOptions {
                shards: 2,
                policy: ShardPolicy::RoundRobin,
                atc: AtcOptions {
                    codec: "bzip".into(),
                    buffer: 500,
                    threads: 5,
                },
                max_buffered_bytes: None,
            },
        )
        .unwrap();
        s.code_all((0..10_000u64).map(|i| i * 64)).unwrap();
        let stats = s.finish().unwrap();
        assert_eq!(stats.count, 10_000);
        let engine = stats.engine.expect("threaded store reports engine stats");
        assert!(engine.submitted > 0, "segments must ride the engine");
        fs::remove_dir_all(&root).unwrap();
    }

    /// The tentpole's donation pin: with *every* address routed to shard
    /// 0 (skewed addr-range routing) and a 2-worker engine, the idle
    /// shard's capacity must be used for the busy shard — observable as
    /// engine steals, since all of shard 0's tasks queue on one home
    /// deque and the second worker has nothing of its own.
    #[test]
    fn idle_shard_capacity_donated_to_busy_shard() {
        let root = tmp("steal");
        let engine = Engine::new(2);
        let mut s = AtcStore::create_with_engine(
            &root,
            Mode::Lossless,
            StoreOptions {
                shards: 2,
                // Shift 62: every realistic address lands in region 0 →
                // shard 0; shard 1 never sees a byte.
                policy: ShardPolicy::AddressRange { shift: 62 },
                atc: AtcOptions {
                    codec: "lz".into(),
                    buffer: 50_000,
                    threads: 2,
                },
                max_buffered_bytes: None,
            },
            engine.clone(),
        )
        .unwrap();
        // 2 M addresses = 16 MiB raw = 16 one-MiB segments, all queued on
        // shard 0's home deque: a long backlog for worker 1 to steal.
        s.code_all((0..2_000_000u64).map(|i| (i % 50_000) * 64))
            .unwrap();
        let stats = s.finish().unwrap();
        assert_eq!(stats.shards[0].count, 2_000_000, "routing must be skewed");
        assert_eq!(stats.shards[1].count, 0);
        let engine_stats = stats.engine.expect("engine stats present");
        assert!(
            engine_stats.steals > 0,
            "the idle shard's worker must steal the busy shard's backlog \
             (tasks_run={}, steals={})",
            engine_stats.tasks_run,
            engine_stats.steals
        );
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn data_dependent_policies_record_interleave_track() {
        let root = tmp("track");
        let mut s = AtcStore::create(
            &root,
            Mode::Lossless,
            StoreOptions {
                shards: 2,
                policy: ShardPolicy::AddressRange { shift: 8 },
                atc: AtcOptions {
                    codec: "store".into(),
                    buffer: 64,
                    threads: 1,
                },
                max_buffered_bytes: None,
            },
        )
        .unwrap();
        // 3 addresses in region 0, then 2 in region 1, then 1 in region 0.
        for addr in [0u64, 8, 16, 0x100, 0x108, 24] {
            s.code(addr).unwrap();
        }
        s.finish().unwrap();
        let manifest =
            StoreManifest::parse(&fs::read_to_string(root.join(STORE_MANIFEST_FILE)).unwrap())
                .unwrap();
        assert_eq!(manifest.version, STORE_FORMAT_VERSION);
        let track = manifest.interleave.expect("addr-range records the track");
        assert_eq!(track.runs(), &[(0, 3), (1, 2), (0, 1)]);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn round_robin_needs_no_recorded_track() {
        let root = tmp("rr-no-track");
        let mut s = AtcStore::create(
            &root,
            Mode::Lossless,
            StoreOptions {
                shards: 3,
                ..StoreOptions::default()
            },
        )
        .unwrap();
        s.code_all(0..100u64).unwrap();
        s.finish().unwrap();
        let text = fs::read_to_string(root.join(STORE_MANIFEST_FILE)).unwrap();
        assert!(
            !text.contains("interleave="),
            "rotation is synthesized, not recorded: {text}"
        );
        assert_eq!(StoreManifest::parse(&text).unwrap().interleave, None);
        fs::remove_dir_all(&root).unwrap();
    }

    /// The shared byte-budget pin: with every address routed to shard 0
    /// and a cap of two segments, the busy shard would happily queue its
    /// whole window (2 threads × 2 = 4 MiB-segments) — the gate must hold
    /// the store-wide high-water mark at the configured cap instead.
    #[test]
    fn byte_budget_caps_buffered_bytes_under_skewed_routing() {
        let root = tmp("budget-cap");
        let cap = 2 * atc_codec::DEFAULT_SEGMENT_SIZE as u64;
        let engine = Engine::new(2);
        let mut s = AtcStore::create_with_engine(
            &root,
            Mode::Lossless,
            StoreOptions {
                shards: 2,
                // Shift 62: everything lands in shard 0.
                policy: ShardPolicy::AddressRange { shift: 62 },
                atc: AtcOptions {
                    codec: "store".into(),
                    buffer: 100_000,
                    threads: 2,
                },
                max_buffered_bytes: Some(cap),
            },
            engine,
        )
        .unwrap();
        // 1 M addresses = 8 MiB raw = 8 one-MiB segments through a 2 MiB
        // budget.
        s.code_all((0..1_000_000u64).map(|i| i * 64)).unwrap();
        let stats = s.finish().unwrap();
        assert_eq!(stats.shards[0].count, 1_000_000, "routing must be skewed");
        let peak = stats.peak_buffered_bytes.expect("threaded store is gated");
        assert!(
            peak <= cap,
            "peak buffered bytes {peak} exceed the configured cap {cap}"
        );
        assert!(peak > 0, "the gate must actually have admitted segments");
        // The store still reads back exactly.
        let mut r = crate::StoreReader::open(&root).unwrap();
        assert_eq!(r.decode_all().unwrap().len(), 1_000_000);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn thread_id_policy_splits_by_key() {
        let root = tmp("tid");
        let mut s = AtcStore::create(
            &root,
            Mode::Lossless,
            StoreOptions {
                shards: 2,
                policy: ShardPolicy::ThreadId,
                atc: AtcOptions {
                    codec: "store".into(),
                    buffer: 64,
                    threads: 1,
                },
                max_buffered_bytes: None,
            },
        )
        .unwrap();
        for i in 0..60u64 {
            s.code_from(i % 3, 0x1000 + i).unwrap();
        }
        let stats = s.finish().unwrap();
        // Keys 0 and 2 land in shard 0 (40 addresses), key 1 in shard 1.
        assert_eq!(stats.shards[0].count, 40);
        assert_eq!(stats.shards[1].count, 20);
        fs::remove_dir_all(&root).unwrap();
    }
}
