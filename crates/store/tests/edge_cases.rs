//! Manifest edge cases under every policy × exact-merge read-back:
//! empty stores (0 addresses), single-address stores, and frames that
//! straddle a shard-run boundary — the places where the interleave
//! track's run bookkeeping, the zipper's batching, and the end-of-store
//! drain check meet.

use atc_core::format::{StoreManifest, STORE_MANIFEST_FILE};
use atc_core::{AtcOptions, Mode};
use atc_store::{AtcStore, ShardPolicy, StoreOptions, StoreReader};

fn tmp(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "atc-store-edge-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The three policies, with parameters chosen so routing is non-trivial.
fn policies() -> [ShardPolicy; 3] {
    [
        ShardPolicy::RoundRobin,
        ShardPolicy::AddressRange { shift: 6 },
        ShardPolicy::ThreadId,
    ]
}

fn options(shards: usize, policy: ShardPolicy, buffer: usize) -> StoreOptions {
    StoreOptions {
        shards,
        policy,
        atc: AtcOptions {
            codec: "store".into(),
            buffer,
            threads: 1,
        },
        max_buffered_bytes: None,
    }
}

/// Writes `addrs` (keyed for thread-id routing) and asserts the merged
/// read-back replays them exactly, batched and stepwise.
fn roundtrip_exact(tag: &str, policy: ShardPolicy, shards: usize, buffer: usize, addrs: &[u64]) {
    let root = tmp(tag);
    let mut s = AtcStore::create(&root, Mode::Lossless, options(shards, policy, buffer)).unwrap();
    for (i, &a) in addrs.iter().enumerate() {
        // Keys cycle so thread-id routing exercises several shards; the
        // other policies ignore the key.
        s.code_from(i as u64 % 3, a).unwrap();
    }
    let stats = s.finish().unwrap();
    assert_eq!(stats.count, addrs.len() as u64, "{tag}");

    let mut r = StoreReader::open(&root).unwrap();
    assert!(r.merge_is_exact(), "{tag}: every policy now merges exactly");
    assert_eq!(r.decode_all().unwrap(), addrs, "{tag}");
    assert_eq!(r.decode().unwrap(), None, "{tag}: end is sticky");

    let mut stepwise = StoreReader::open(&root).unwrap();
    stepwise.merge_batching(false);
    assert_eq!(stepwise.decode_all().unwrap(), addrs, "{tag}: stepwise");
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn empty_store_roundtrips_under_all_policies() {
    for (i, policy) in policies().into_iter().enumerate() {
        for shards in [1usize, 3] {
            let tag = format!("empty-{i}-{shards}");
            roundtrip_exact(&tag, policy, shards, 64, &[]);
        }
    }
}

#[test]
fn empty_store_manifest_parses_with_empty_track() {
    // A 0-address store under a data-dependent policy writes a track
    // with zero runs; the manifest line must survive its own roundtrip.
    let root = tmp("empty-manifest");
    let s = AtcStore::create(&root, Mode::Lossless, options(2, ShardPolicy::ThreadId, 64)).unwrap();
    s.finish().unwrap();
    let text = std::fs::read_to_string(root.join(STORE_MANIFEST_FILE)).unwrap();
    assert!(text.contains("interleave="), "{text}");
    let manifest = StoreManifest::parse(&text).unwrap();
    let track = manifest.interleave.expect("empty track still present");
    assert_eq!(track.runs().len(), 0);
    assert_eq!(track.addresses(), 0);
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn single_address_store_roundtrips_under_all_policies() {
    for (i, policy) in policies().into_iter().enumerate() {
        for shards in [1usize, 3] {
            let tag = format!("single-{i}-{shards}");
            roundtrip_exact(&tag, policy, shards, 64, &[0xDEAD_BEEF]);
        }
    }
}

#[test]
fn frames_straddling_shard_run_boundaries_replay_exactly() {
    // Runs of 3 addresses per region/key against a bytesort buffer of 4:
    // every shard's frames keep crossing the track's run boundaries, so
    // the merge must repeatedly split a buffered frame across two runs
    // (and a run across two frames).
    let mut addrs = Vec::new();
    for lap in 0..50u64 {
        for step in 0..3u64 {
            // Region alternates every 3 addresses (shift 6 = 64-byte
            // regions); thread keys follow i % 3 from roundtrip_exact.
            addrs.push((lap % 2) * 64 + lap * 1024 + step * 8);
        }
    }
    for (i, policy) in policies().into_iter().enumerate() {
        for buffer in [1usize, 4, 7] {
            let tag = format!("straddle-{i}-{buffer}");
            roundtrip_exact(&tag, policy, 2, buffer, &addrs);
        }
    }
}

#[test]
fn single_shard_data_dependent_store_has_one_run() {
    // Everything routes to shard 0 when there is only one shard: the
    // track collapses to a single run covering the whole stream.
    let root = tmp("one-shard-run");
    let mut s = AtcStore::create(
        &root,
        Mode::Lossless,
        options(1, ShardPolicy::AddressRange { shift: 12 }, 32),
    )
    .unwrap();
    s.code_all((0..500u64).map(|i| i * 8)).unwrap();
    s.finish().unwrap();
    let manifest =
        StoreManifest::parse(&std::fs::read_to_string(root.join(STORE_MANIFEST_FILE)).unwrap())
            .unwrap();
    assert_eq!(
        manifest.interleave.unwrap().runs(),
        &[(0, 500)],
        "one shard, one run"
    );
    let mut r = StoreReader::open(&root).unwrap();
    assert_eq!(r.decode_all().unwrap().len(), 500);
    std::fs::remove_dir_all(&root).unwrap();
}
