//! Property-based tests for the sharded store: sharded write → merged
//! read must reproduce the input stream exactly for every (shard count,
//! thread count) combination, and per-key sub-streams must survive
//! thread-id routing byte-for-byte.

use proptest::collection::vec;
use proptest::prelude::*;

use atc_core::{AtcOptions, Mode, ReadOptions};
use atc_store::{AtcStore, ShardPolicy, StoreOptions, StoreReader};

fn tmp(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "atc-store-prop-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The (shard count, thread count) grid the roundtrip invariants run on:
/// 1 (degenerate), 2 (even), 7 (odd, larger than the thread budget) ×
/// serial and 4-thread pipelines.
const SHARDS: [usize; 3] = [1, 2, 7];
const THREADS: [usize; 2] = [1, 4];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn round_robin_roundtrip_exact_for_all_shard_thread_combos(
        addrs in vec(any::<u64>(), 0..4000),
        buffer in 1usize..700,
    ) {
        for shards in SHARDS {
            for threads in THREADS {
                let root = tmp(&format!("rr-{shards}-{threads}"));
                let mut s = AtcStore::create(
                    &root,
                    Mode::Lossless,
                    StoreOptions {
                        shards,
                        policy: ShardPolicy::RoundRobin,
                        atc: AtcOptions {
                            codec: "bzip".into(),
                            buffer,
                            threads,
                        },
                    },
                )
                .unwrap();
                s.code_all(addrs.iter().copied()).unwrap();
                let stats = s.finish().unwrap();
                prop_assert_eq!(stats.count, addrs.len() as u64);

                // Read back at the same thread count and serially: the
                // on-disk store never records threading.
                for read_threads in [1usize, threads] {
                    let mut r = StoreReader::open_with(
                        &root,
                        ReadOptions {
                            threads: read_threads,
                            ..ReadOptions::default()
                        },
                    )
                    .unwrap();
                    let back = r.decode_all().unwrap();
                    prop_assert_eq!(
                        &back,
                        &addrs,
                        "shards={} threads={} read_threads={}",
                        shards,
                        threads,
                        read_threads
                    );
                    prop_assert!(r.decode().unwrap().is_none());
                }
                std::fs::remove_dir_all(&root).unwrap();
            }
        }
    }

    #[test]
    fn thread_id_substreams_survive_sharding(
        addrs in vec(any::<u64>(), 1..2000),
        keys in 1u64..5,
    ) {
        for shards in SHARDS {
            let root = tmp(&format!("tid-{shards}"));
            let mut s = AtcStore::create(
                &root,
                Mode::Lossless,
                StoreOptions {
                    shards,
                    policy: ShardPolicy::ThreadId,
                    atc: AtcOptions {
                        codec: "lz".into(),
                        buffer: 256,
                        threads: 1,
                    },
                },
            )
            .unwrap();
            for (i, &a) in addrs.iter().enumerate() {
                s.code_from(i as u64 % keys, a).unwrap();
            }
            s.finish().unwrap();

            // Each shard must hold exactly the concatenation of its
            // keys' sub-streams, in arrival order.
            let mut r = StoreReader::open(&root).unwrap();
            for shard in 0..shards {
                let expect: Vec<u64> = addrs
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| (*i as u64 % keys) % shards as u64 == shard as u64)
                    .map(|(_, &a)| a)
                    .collect();
                let got = r.shard(shard).decode_all().unwrap();
                prop_assert_eq!(&got, &expect, "shards={} shard={}", shards, shard);
            }
            std::fs::remove_dir_all(&root).unwrap();
        }
    }

    #[test]
    fn addr_range_merged_read_is_shard_concatenation(
        addrs in vec(any::<u64>(), 0..2000),
        shift in 4u32..40,
    ) {
        let shards = 3usize;
        let policy = ShardPolicy::AddressRange { shift };
        let root = tmp("ar");
        let mut s = AtcStore::create(
            &root,
            Mode::Lossless,
            StoreOptions {
                shards,
                policy,
                atc: AtcOptions {
                    codec: "store".into(),
                    buffer: 128,
                    threads: 1,
                },
            },
        )
        .unwrap();
        s.code_all(addrs.iter().copied()).unwrap();
        s.finish().unwrap();

        let mut expect = Vec::new();
        for shard in 0..shards {
            expect.extend(
                addrs
                    .iter()
                    .filter(|&&a| policy.route(0, 0, a, shards) == shard),
            );
        }
        let mut r = StoreReader::open(&root).unwrap();
        prop_assert_eq!(r.decode_all().unwrap(), expect);
        std::fs::remove_dir_all(&root).unwrap();
    }
}
