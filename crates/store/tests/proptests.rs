//! Property-based tests for the sharded store: sharded write → merged
//! read must reproduce the input stream exactly for every (shard count,
//! thread count, engine worker count) combination — including engines
//! oversubscribed with more shards than workers — and per-key sub-streams
//! must survive thread-id routing byte-for-byte.

use proptest::collection::vec;
use proptest::prelude::*;

use atc_core::{AtcOptions, Mode, ReadOptions};
use atc_engine::Engine;
use atc_store::{AtcStore, ShardPolicy, StoreOptions, StoreReader};

fn tmp(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "atc-store-prop-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The (shard count, thread count) grid the roundtrip invariants run on:
/// 1 (degenerate), 2 (even), 7 (odd, larger than the thread budget) ×
/// serial and 4-thread pipelines.
const SHARDS: [usize; 3] = [1, 2, 7];
const THREADS: [usize; 2] = [1, 4];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn round_robin_roundtrip_exact_for_all_shard_thread_combos(
        addrs in vec(any::<u64>(), 0..4000),
        buffer in 1usize..700,
    ) {
        for shards in SHARDS {
            for threads in THREADS {
                let root = tmp(&format!("rr-{shards}-{threads}"));
                let mut s = AtcStore::create(
                    &root,
                    Mode::Lossless,
                    StoreOptions {
                        shards,
                        policy: ShardPolicy::RoundRobin,
                        atc: AtcOptions {
                            codec: "bzip".into(),
                            buffer,
                            threads,
                        },
                        max_buffered_bytes: None,
                    },
                )
                .unwrap();
                s.code_all(addrs.iter().copied()).unwrap();
                let stats = s.finish().unwrap();
                prop_assert_eq!(stats.count, addrs.len() as u64);

                // Read back at the same thread count and serially: the
                // on-disk store never records threading.
                for read_threads in [1usize, threads] {
                    let mut r = StoreReader::open_with(
                        &root,
                        ReadOptions {
                            threads: read_threads,
                            ..ReadOptions::default()
                        },
                    )
                    .unwrap();
                    let back = r.decode_all().unwrap();
                    prop_assert_eq!(
                        &back,
                        &addrs,
                        "shards={} threads={} read_threads={}",
                        shards,
                        threads,
                        read_threads
                    );
                    prop_assert!(r.decode().unwrap().is_none());
                }
                std::fs::remove_dir_all(&root).unwrap();
            }
        }
    }

    /// Engine-oversubscription pin: the on-disk bytes of every shard must
    /// be identical whether the store runs inline (threads = 1), or
    /// submits to an engine with fewer workers than shards (7 shards on 1
    /// or 2 workers), or with more workers than the submitter window —
    /// and the merged read must be exact on equally mismatched read-side
    /// engines.
    #[test]
    fn roundtrip_exact_at_every_engine_worker_count(
        addrs in vec(any::<u64>(), 1..3000),
        buffer in 1usize..500,
    ) {
        for shards in SHARDS {
            // Reference: fully inline store (no engine at all).
            let serial_root = tmp(&format!("eng-ref-{shards}"));
            let mut s = AtcStore::create(
                &serial_root,
                Mode::Lossless,
                StoreOptions {
                    shards,
                    policy: ShardPolicy::RoundRobin,
                    atc: AtcOptions {
                        codec: "bzip".into(),
                        buffer,
                        threads: 1,
                    },
                    max_buffered_bytes: None,
                },
            )
            .unwrap();
            s.code_all(addrs.iter().copied()).unwrap();
            s.finish().unwrap();
            let shard_bytes = |root: &std::path::Path| -> Vec<Vec<u8>> {
                (0..shards)
                    .map(|i| {
                        std::fs::read(
                            root.join(atc_core::format::shard_dir_name(i)).join("data.atc"),
                        )
                        .unwrap()
                    })
                    .collect()
            };
            let expect_bytes = shard_bytes(&serial_root);

            for workers in [1usize, 2, 4, 8] {
                let root = tmp(&format!("eng-{shards}-{workers}"));
                let engine = Engine::new(workers);
                let mut s = AtcStore::create_with_engine(
                    &root,
                    Mode::Lossless,
                    StoreOptions {
                        shards,
                        policy: ShardPolicy::RoundRobin,
                        atc: AtcOptions {
                            codec: "bzip".into(),
                            buffer,
                            threads: 4,
                        },
                        max_buffered_bytes: None,
                    },
                    engine,
                )
                .unwrap();
                s.code_all(addrs.iter().copied()).unwrap();
                s.finish().unwrap();
                prop_assert_eq!(
                    &shard_bytes(&root),
                    &expect_bytes,
                    "on-disk bytes must not depend on engine workers \
                     (shards={} workers={})",
                    shards,
                    workers
                );

                // Merged read back through an equally mismatched engine.
                let mut r = StoreReader::open_with(
                    &root,
                    ReadOptions {
                        threads: 4,
                        engine: Some(Engine::new(workers)),
                        ..ReadOptions::default()
                    },
                )
                .unwrap();
                prop_assert_eq!(
                    &r.decode_all().unwrap(),
                    &addrs,
                    "shards={} workers={}",
                    shards,
                    workers
                );
                prop_assert!(r.decode().unwrap().is_none());
                std::fs::remove_dir_all(&root).unwrap();
            }
            std::fs::remove_dir_all(&serial_root).unwrap();
        }
    }

    /// The batched round-robin zipper and the stepwise cursor must hand
    /// out identical value sequences (including the final partial
    /// rotation and single-shard stores).
    #[test]
    fn zipper_matches_stepwise_merge(
        addrs in vec(any::<u64>(), 0..3000),
        buffer in 1usize..400,
    ) {
        for shards in SHARDS {
            let root = tmp(&format!("zip-{shards}"));
            let mut s = AtcStore::create(
                &root,
                Mode::Lossless,
                StoreOptions {
                    shards,
                    policy: ShardPolicy::RoundRobin,
                    atc: AtcOptions {
                        codec: "store".into(),
                        buffer,
                        threads: 1,
                    },
                    max_buffered_bytes: None,
                },
            )
            .unwrap();
            s.code_all(addrs.iter().copied()).unwrap();
            s.finish().unwrap();

            let mut zipped = StoreReader::open(&root).unwrap();
            let mut stepwise = StoreReader::open(&root).unwrap();
            stepwise.merge_batching(false);
            let a = zipped.decode_all().unwrap();
            let b = stepwise.decode_all().unwrap();
            prop_assert_eq!(&a, &addrs, "zipper exact (shards={})", shards);
            prop_assert_eq!(&a, &b, "zipper == stepwise (shards={})", shards);
            std::fs::remove_dir_all(&root).unwrap();
        }
    }

    #[test]
    fn thread_id_substreams_survive_sharding(
        addrs in vec(any::<u64>(), 1..2000),
        keys in 1u64..5,
    ) {
        for shards in SHARDS {
            let root = tmp(&format!("tid-{shards}"));
            let mut s = AtcStore::create(
                &root,
                Mode::Lossless,
                StoreOptions {
                    shards,
                    policy: ShardPolicy::ThreadId,
                    atc: AtcOptions {
                        codec: "lz".into(),
                        buffer: 256,
                        threads: 1,
                    },
                    max_buffered_bytes: None,
                },
            )
            .unwrap();
            for (i, &a) in addrs.iter().enumerate() {
                s.code_from(i as u64 % keys, a).unwrap();
            }
            s.finish().unwrap();

            // Each shard must hold exactly the concatenation of its
            // keys' sub-streams, in arrival order.
            let mut r = StoreReader::open(&root).unwrap();
            for shard in 0..shards {
                let expect: Vec<u64> = addrs
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| (*i as u64 % keys) % shards as u64 == shard as u64)
                    .map(|(_, &a)| a)
                    .collect();
                let got = r.shard(shard).decode_all().unwrap();
                prop_assert_eq!(&got, &expect, "shards={} shard={}", shards, shard);
            }
            std::fs::remove_dir_all(&root).unwrap();
        }
    }

    #[test]
    fn addr_range_merged_read_replays_arrival_order(
        addrs in vec(any::<u64>(), 0..2000),
        shift in 4u32..40,
    ) {
        // The recorded interleave track makes the data-dependent policy
        // merge exact; stripping it (the old-manifest fixture) falls
        // back to shard concatenation.
        let shards = 3usize;
        let policy = ShardPolicy::AddressRange { shift };
        let root = tmp("ar");
        let mut s = AtcStore::create(
            &root,
            Mode::Lossless,
            StoreOptions {
                shards,
                policy,
                atc: AtcOptions {
                    codec: "store".into(),
                    buffer: 128,
                    threads: 1,
                },
                max_buffered_bytes: None,
            },
        )
        .unwrap();
        s.code_all(addrs.iter().copied()).unwrap();
        s.finish().unwrap();

        let mut r = StoreReader::open(&root).unwrap();
        prop_assert!(r.merge_is_exact());
        prop_assert_eq!(&r.decode_all().unwrap(), &addrs);

        // Old-manifest fixture: drop the track, rewind the version.
        let path = root.join(atc_core::format::STORE_MANIFEST_FILE);
        let text = std::fs::read_to_string(&path).unwrap();
        let old: String = text
            .lines()
            .filter(|l| !l.starts_with("interleave="))
            .map(|l| if l.starts_with("version=") { "version=1" } else { l })
            .collect::<Vec<_>>()
            .join("\n") + "\n";
        std::fs::write(&path, old).unwrap();
        let mut expect = Vec::new();
        for shard in 0..shards {
            expect.extend(
                addrs
                    .iter()
                    .filter(|&&a| policy.route(0, 0, a, shards) == shard),
            );
        }
        let mut r = StoreReader::open(&root).unwrap();
        prop_assert!(!r.merge_is_exact());
        prop_assert_eq!(r.decode_all().unwrap(), expect);
        std::fs::remove_dir_all(&root).unwrap();
    }
}

// The interleave-track acceptance grid: byte-identical replay of the
// merged stream versus the pre-shard input for the data-dependent
// policies over shards {1, 2, 7} × engine workers {1, 2, 8}, in both
// the batched and stepwise merge modes. Fewer cases than the blocks
// above — each case walks 2 policies × 9 (shards, workers) stores.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn exact_interleave_replay_for_data_dependent_policies(
        addrs in vec(any::<u64>(), 1..1500),
        shift in 2u32..24,
        buffer in 1usize..300,
    ) {
        for shards in SHARDS {
            for workers in [1usize, 2, 8] {
                for policy in [
                    ShardPolicy::AddressRange { shift },
                    ShardPolicy::ThreadId,
                ] {
                    let root = tmp(&format!(
                        "ix-{shards}-{workers}-{}",
                        policy.to_name().replace(':', "_")
                    ));
                    let engine = Engine::new(workers);
                    let mut s = AtcStore::create_with_engine(
                        &root,
                        Mode::Lossless,
                        StoreOptions {
                            shards,
                            policy,
                            atc: AtcOptions {
                                codec: "lz".into(),
                                buffer,
                                threads: 4,
                            },
                            max_buffered_bytes: None,
                        },
                        engine,
                    )
                    .unwrap();
                    for (i, &a) in addrs.iter().enumerate() {
                        // Thread-id routing needs keys; the other
                        // policies ignore them.
                        s.code_from(i as u64 % 5, a).unwrap();
                    }
                    s.finish().unwrap();

                    let mut r = StoreReader::open_with(
                        &root,
                        ReadOptions {
                            threads: 4,
                            engine: Some(Engine::new(workers)),
                            ..ReadOptions::default()
                        },
                    )
                    .unwrap();
                    prop_assert!(r.merge_is_exact());
                    prop_assert_eq!(
                        &r.decode_all().unwrap(),
                        &addrs,
                        "policy={} shards={} workers={}",
                        policy.to_name(),
                        shards,
                        workers
                    );
                    prop_assert!(r.decode().unwrap().is_none());

                    let mut stepwise = StoreReader::open(&root).unwrap();
                    stepwise.merge_batching(false);
                    prop_assert_eq!(
                        &stepwise.decode_all().unwrap(),
                        &addrs,
                        "stepwise policy={} shards={} workers={}",
                        policy.to_name(),
                        shards,
                        workers
                    );
                    std::fs::remove_dir_all(&root).unwrap();
                }
            }
        }
    }
}
