//! The TCgen-class compressor: predictor codes + literal escape streams.
//!
//! Each input value is checked against the [`crate::PredictorBank`]'s
//! candidate predictions. A hit emits a one-byte *code* (the index of the
//! first matching slot); a miss emits the `MISS` code plus the raw 8-byte
//! value into a separate *literal* stream. Both streams then go through a
//! byte-level back end — the same division of labour as the VPC3/TCgen
//! compressors the paper benchmarks against, which also pipe their code and
//! literal streams through bzip2.

use std::sync::Arc;

use atc_codec::{varint, Codec};

use crate::predictor::{PredictorBank, NUM_CODES};

/// Code emitted when no predictor slot matches.
const MISS: u8 = NUM_CODES as u8;

/// Errors from [`Tcgen::decompress`].
#[derive(Debug)]
#[non_exhaustive]
pub enum TcgenError {
    /// The container framing is malformed or truncated.
    Format(String),
    /// The back-end codec failed.
    Codec(atc_codec::CodecError),
}

impl std::fmt::Display for TcgenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TcgenError::Format(s) => write!(f, "invalid tcgen stream: {s}"),
            TcgenError::Codec(e) => write!(f, "codec error in tcgen stream: {e}"),
        }
    }
}

impl std::error::Error for TcgenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TcgenError::Codec(e) => Some(e),
            TcgenError::Format(_) => None,
        }
    }
}

impl From<atc_codec::CodecError> for TcgenError {
    fn from(e: atc_codec::CodecError) -> Self {
        TcgenError::Codec(e)
    }
}

/// Configuration of the TCgen-class compressor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcgenConfig {
    /// Lines per predictor table (power of two). The paper's
    /// memory-matched configuration is `1 << 20`.
    pub table_lines: usize,
}

impl Default for TcgenConfig {
    /// 2^16 lines (≈ 5.8 MB of tables): a laptop-friendly default. Use
    /// `1 << 20` to reproduce the paper's 232 MB configuration.
    fn default() -> Self {
        Self {
            table_lines: 1 << 16,
        }
    }
}

/// The TCgen-class value-prediction trace compressor.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use atc_codec::{Bzip, Codec};
/// use atc_tcgen::{Tcgen, TcgenConfig};
///
/// let codec: Arc<dyn Codec> = Arc::new(Bzip::default());
/// let tc = Tcgen::new(TcgenConfig::default(), codec);
/// let trace: Vec<u64> = (0..10_000u64).map(|i| 0x4000 + i * 64).collect();
/// let packed = tc.compress(&trace);
/// assert!(packed.len() < trace.len()); // far fewer bytes than values
/// assert_eq!(tc.decompress(&packed).unwrap(), trace);
/// ```
#[derive(Debug)]
pub struct Tcgen {
    config: TcgenConfig,
    codec: Arc<dyn Codec>,
}

impl Tcgen {
    /// Creates a compressor with the given table size and back-end codec.
    ///
    /// # Panics
    ///
    /// Panics if `config.table_lines` is not a power of two.
    pub fn new(config: TcgenConfig, codec: Arc<dyn Codec>) -> Self {
        assert!(
            config.table_lines.is_power_of_two(),
            "table_lines must be a power of two"
        );
        Self { config, codec }
    }

    /// The active configuration.
    pub fn config(&self) -> TcgenConfig {
        self.config
    }

    /// Compresses a value sequence.
    ///
    /// Layout: `varint(count) ++ varint(|codes|) ++ codes ++ varint(|lits|)
    /// ++ lits`, where both payloads are codec-compressed.
    pub fn compress(&self, values: &[u64]) -> Vec<u8> {
        let mut bank = PredictorBank::new(self.config.table_lines);
        let mut codes = Vec::with_capacity(values.len());
        let mut lits = Vec::new();
        for &v in values {
            let preds = bank.predictions();
            match preds.iter().position(|&p| p == v) {
                Some(code) => codes.push(code as u8),
                None => {
                    codes.push(MISS);
                    lits.extend_from_slice(&v.to_le_bytes());
                }
            }
            bank.update(v);
        }
        let codes_packed = self.codec.compress(&codes);
        let lits_packed = self.codec.compress(&lits);
        let mut out = Vec::with_capacity(codes_packed.len() + lits_packed.len() + 24);
        // atclint: allow(library-unwrap) -- infallible: io::Write on a
        // Vec<u8> never errors (all three varint writes below).
        varint::write_u64(&mut out, values.len() as u64).expect("vec write");
        // atclint: allow(library-unwrap) -- infallible: vec write.
        varint::write_u64(&mut out, codes_packed.len() as u64).expect("vec write");
        out.extend_from_slice(&codes_packed);
        // atclint: allow(library-unwrap) -- infallible: vec write.
        varint::write_u64(&mut out, lits_packed.len() as u64).expect("vec write");
        out.extend_from_slice(&lits_packed);
        out
    }

    /// Decompresses a buffer produced by [`Tcgen::compress`].
    ///
    /// # Errors
    ///
    /// Returns [`TcgenError`] on malformed framing, codec failures, or
    /// stream-length inconsistencies.
    pub fn decompress(&self, data: &[u8]) -> Result<Vec<u64>, TcgenError> {
        let mut cur = data;
        let count = varint::read_u64(&mut cur)
            .map_err(|_| TcgenError::Format("missing count".into()))? as usize;
        let codes_len = varint::read_u64(&mut cur)
            .map_err(|_| TcgenError::Format("missing code-stream length".into()))?
            as usize;
        if cur.len() < codes_len {
            return Err(TcgenError::Format("truncated code stream".into()));
        }
        let codes = self.codec.decompress(&cur[..codes_len])?;
        cur = &cur[codes_len..];
        let lits_len = varint::read_u64(&mut cur)
            .map_err(|_| TcgenError::Format("missing literal-stream length".into()))?
            as usize;
        if cur.len() < lits_len {
            return Err(TcgenError::Format("truncated literal stream".into()));
        }
        let lits = self.codec.decompress(&cur[..lits_len])?;
        if codes.len() != count {
            return Err(TcgenError::Format(format!(
                "code stream has {} entries, header says {count}",
                codes.len()
            )));
        }

        let mut bank = PredictorBank::new(self.config.table_lines);
        let mut out = Vec::with_capacity(count);
        let mut lit_pos = 0usize;
        for &code in &codes {
            let v = if code == MISS {
                if lit_pos + 8 > lits.len() {
                    return Err(TcgenError::Format("literal stream underrun".into()));
                }
                // atclint: allow(library-unwrap) -- infallible: the bounds
                // check above guarantees 8 bytes remain.
                let v = u64::from_le_bytes(lits[lit_pos..lit_pos + 8].try_into().expect("8 bytes"));
                lit_pos += 8;
                v
            } else if (code as usize) < NUM_CODES {
                bank.predictions()[code as usize]
            } else {
                return Err(TcgenError::Format(format!("invalid code {code}")));
            };
            bank.update(v);
            out.push(v);
        }
        if lit_pos != lits.len() {
            return Err(TcgenError::Format("unconsumed literal bytes".into()));
        }
        Ok(out)
    }

    /// Convenience: compressed size in bits per value for a trace.
    pub fn bits_per_value(&self, values: &[u64]) -> f64 {
        if values.is_empty() {
            return 0.0;
        }
        self.compress(values).len() as f64 * 8.0 / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atc_codec::{Bzip, Store};

    fn tc(lines: usize) -> Tcgen {
        Tcgen::new(
            TcgenConfig { table_lines: lines },
            Arc::new(Bzip::default()),
        )
    }

    #[test]
    fn empty_roundtrip() {
        let t = tc(64);
        let packed = t.compress(&[]);
        assert_eq!(t.decompress(&packed).unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn stride_roundtrip_and_ratio() {
        let t = tc(1 << 12);
        let trace: Vec<u64> = (0..50_000u64).map(|i| i * 64).collect();
        let packed = t.compress(&trace);
        assert_eq!(t.decompress(&packed).unwrap(), trace);
        // A pure stride is almost all predictor hits: expect < 0.5 BPA.
        let bpa = packed.len() as f64 * 8.0 / trace.len() as f64;
        assert!(bpa < 0.5, "stride BPA {bpa}");
    }

    #[test]
    fn random_roundtrip() {
        let t = tc(1 << 10);
        let mut x: u64 = 3;
        let trace: Vec<u64> = (0..5_000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                x >> 8
            })
            .collect();
        let packed = t.compress(&trace);
        assert_eq!(t.decompress(&packed).unwrap(), trace);
    }

    #[test]
    fn repeated_loop_compresses_well() {
        let t = tc(1 << 12);
        let pattern: Vec<u64> = (0..64u64)
            .map(|i| i.wrapping_mul(0x123456789) >> 3)
            .collect();
        let trace: Vec<u64> = std::iter::repeat_with(|| pattern.clone())
            .take(200)
            .flatten()
            .collect();
        let packed = t.compress(&trace);
        assert_eq!(t.decompress(&packed).unwrap(), trace);
        let bpa = packed.len() as f64 * 8.0 / trace.len() as f64;
        assert!(bpa < 1.0, "looped pattern BPA {bpa}");
    }

    #[test]
    fn store_codec_layout() {
        // With the identity codec the layout is directly inspectable.
        let t = Tcgen::new(TcgenConfig { table_lines: 64 }, Arc::new(Store));
        let packed = t.compress(&[1, 2, 3]);
        let mut cur = &packed[..];
        assert_eq!(varint::read_u64(&mut cur).unwrap(), 3);
        assert_eq!(t.decompress(&packed).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn corrupt_input_rejected() {
        let t = tc(64);
        let trace: Vec<u64> = (0..100u64).collect();
        let packed = t.compress(&trace);
        assert!(t.decompress(&packed[..packed.len() / 2]).is_err());
        assert!(t.decompress(&[]).is_err());
    }

    #[test]
    fn different_table_sizes_both_roundtrip() {
        for lines in [1usize, 2, 64, 1 << 14] {
            let t = tc(lines.next_power_of_two());
            let trace: Vec<u64> = (0..2000u64).map(|i| (i * 31) % 500).collect();
            let packed = t.compress(&trace);
            assert_eq!(t.decompress(&packed).unwrap(), trace, "lines={lines}");
        }
    }
}
