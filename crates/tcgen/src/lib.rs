//! # atc-tcgen — TCgen/VPC-class baseline compressor
//!
//! The paper compares bytesort against "a VPC-like compressor/decompressor
//! generated with TCgen" using the specification
//! `DFCM3[2], FCM3[3], FCM2[3], FCM1[3]` with 2^20-line second-level tables
//! and a bzip2 back end (§4.2, Table 1). TCgen itself is a code generator;
//! this crate implements the compressor that specification describes:
//!
//! * a [`PredictorBank`] of FCM (value) and DFCM (delta) predictors with
//!   MRU-ordered lines,
//! * a [`Tcgen`] encoder that replaces predicted values with one-byte slot
//!   codes and escapes mispredictions into a literal stream,
//! * both streams piped through an [`atc_codec::Codec`] back end.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use atc_codec::Bzip;
//! use atc_tcgen::{Tcgen, TcgenConfig};
//!
//! let tc = Tcgen::new(TcgenConfig::default(), Arc::new(Bzip::default()));
//! let trace: Vec<u64> = (0..1000u64).map(|i| i * 64).collect();
//! let packed = tc.compress(&trace);
//! assert_eq!(tc.decompress(&packed).unwrap(), trace);
//! ```

mod compressor;
mod predictor;

pub use compressor::{Tcgen, TcgenConfig, TcgenError};
pub use predictor::{PredictorBank, NUM_CODES};
