//! Value predictors: FCM and DFCM sub-predictors with MRU lines.
//!
//! The paper's TCgen specification is
//! `64-Bit Field 1 = L1 = 1, L2 = 1048576: DFCM3[2], FCM3[3], FCM2[3],
//! FCM1[3]` — a bank of finite-context-method predictors over the value
//! stream (FCM) and the delta stream (DFCM), each table line holding the
//! most recent values seen in that context. A prediction "hits" when any
//! slot of any sub-predictor matches; the slot's global index becomes the
//! emitted code.

/// Number of candidate predictions produced per value:
/// DFCM3 has 2 slots; FCM3, FCM2, FCM1 have 3 each.
pub const NUM_CODES: usize = 2 + 3 + 3 + 3;

/// Mixes one value into a context hash.
#[inline]
fn mix(h: u64, v: u64) -> u64 {
    (h << 5) ^ h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_right(23)
}

/// One FCM table: context hash of the last `order` items → line of `slots`
/// most-recent items seen in that context.
#[derive(Debug, Clone)]
struct FcmTable {
    order: usize,
    slots: usize,
    mask: usize,
    table: Vec<u64>,
}

impl FcmTable {
    fn new(order: usize, slots: usize, lines: usize) -> Self {
        assert!(
            lines.is_power_of_two(),
            "table lines must be a power of two"
        );
        Self {
            order,
            slots,
            mask: lines - 1,
            table: vec![0; lines * slots],
        }
    }

    /// Hash of the `order` most recent items (`hist[0]` newest).
    fn index(&self, hist: &[u64]) -> usize {
        let mut h = 0u64;
        for &v in &hist[..self.order] {
            h = mix(h, v);
        }
        (h as usize & self.mask) * self.slots
    }

    fn line(&self, hist: &[u64]) -> &[u64] {
        let i = self.index(hist);
        &self.table[i..i + self.slots]
    }

    /// MRU update: move `value` to the line front (inserting if absent).
    fn update(&mut self, hist: &[u64], value: u64) {
        let i = self.index(hist);
        let line = &mut self.table[i..i + self.slots];
        let pos = line
            .iter()
            .position(|&v| v == value)
            .unwrap_or(self.slots - 1);
        line.copy_within(0..pos, 1);
        line[0] = value;
    }
}

/// The full predictor bank shared by the compressor and decompressor.
///
/// Determinism is the whole point (Shannon's two-identical-predictors
/// scheme, §3 of the paper): both sides feed it exactly the same committed
/// values, so both sides see exactly the same predictions.
#[derive(Debug, Clone)]
pub struct PredictorBank {
    dfcm3: FcmTable,
    fcm3: FcmTable,
    fcm2: FcmTable,
    fcm1: FcmTable,
    /// Last committed value.
    last: u64,
    /// Most recent values, newest first.
    vhist: [u64; 3],
    /// Most recent deltas, newest first.
    dhist: [u64; 3],
}

impl PredictorBank {
    /// Creates a bank whose tables have `lines` lines each.
    ///
    /// The paper's memory-matched configuration uses 2^20 lines (232 MB
    /// process footprint); tests use far fewer.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is not a power of two.
    pub fn new(lines: usize) -> Self {
        Self {
            dfcm3: FcmTable::new(3, 2, lines),
            fcm3: FcmTable::new(3, 3, lines),
            fcm2: FcmTable::new(2, 3, lines),
            fcm1: FcmTable::new(1, 3, lines),
            last: 0,
            vhist: [0; 3],
            dhist: [0; 3],
        }
    }

    /// Produces all [`NUM_CODES`] candidate predictions, in code order:
    /// DFCM3 slots, then FCM3, FCM2, FCM1 slots.
    pub fn predictions(&self) -> [u64; NUM_CODES] {
        let mut out = [0u64; NUM_CODES];
        let mut k = 0;
        for &d in self.dfcm3.line(&self.dhist) {
            out[k] = self.last.wrapping_add(d);
            k += 1;
        }
        for table in [&self.fcm3, &self.fcm2, &self.fcm1] {
            for &v in table.line(&self.vhist) {
                out[k] = v;
                k += 1;
            }
        }
        debug_assert_eq!(k, NUM_CODES);
        out
    }

    /// Commits the actual next value, updating every table and history.
    pub fn update(&mut self, value: u64) {
        let delta = value.wrapping_sub(self.last);
        self.dfcm3.update(&self.dhist, delta);
        self.fcm3.update(&self.vhist, value);
        self.fcm2.update(&self.vhist, value);
        self.fcm1.update(&self.vhist, value);
        self.vhist = [value, self.vhist[0], self.vhist[1]];
        self.dhist = [delta, self.dhist[0], self.dhist[1]];
        self.last = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_pattern_predicted_by_dfcm() {
        let mut bank = PredictorBank::new(1 << 10);
        // Warm up an arithmetic sequence.
        for i in 0..100u64 {
            bank.update(i * 64);
        }
        // The constant delta must now be predicted by a DFCM slot.
        let preds = bank.predictions();
        assert!(
            preds[..2].contains(&(100 * 64)),
            "DFCM should predict the next stride element, got {preds:?}"
        );
    }

    #[test]
    fn repeated_sequence_predicted_by_fcm() {
        let mut bank = PredictorBank::new(1 << 10);
        let pattern = [10u64, 500, 7, 999, 123];
        for _ in 0..20 {
            for &v in &pattern {
                bank.update(v);
            }
        }
        // Mid-pattern the FCMs know what follows.
        for (i, &v) in pattern.iter().enumerate() {
            let preds = bank.predictions();
            assert!(
                preds.contains(&v),
                "element {i} of a learned loop must be predicted, got {preds:?}"
            );
            bank.update(v);
        }
    }

    #[test]
    fn mru_promotes_recent_values() {
        let mut t = FcmTable::new(1, 2, 16);
        let hist = [42u64, 0, 0];
        t.update(&hist, 100);
        t.update(&hist, 200);
        assert_eq!(t.line(&hist), &[200, 100]);
        // Re-touching 100 moves it back to front without losing 200.
        t.update(&hist, 100);
        assert_eq!(t.line(&hist), &[100, 200]);
    }

    #[test]
    fn deterministic_replay() {
        let mut a = PredictorBank::new(256);
        let mut b = PredictorBank::new(256);
        let mut x: u64 = 5;
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            assert_eq!(a.predictions(), b.predictions());
            a.update(x >> 30);
            b.update(x >> 30);
        }
    }

    #[test]
    fn num_codes_constant() {
        let bank = PredictorBank::new(64);
        assert_eq!(bank.predictions().len(), NUM_CODES);
        assert_eq!(NUM_CODES, 11);
    }
}
