//! Trace analysis: the quantities that explain *why* a trace compresses the
//! way it does.
//!
//! The paper's narrative ties compressibility to trace structure — byte
//! columns with low entropy compress once unshuffled (§4.1), stationary
//! traces collapse under phase detection (§5), footprint drives the myopic
//! interval problem. This module computes those diagnostics:
//!
//! * [`footprint`] — distinct blocks touched;
//! * [`working_set_curve`] — distinct blocks per fixed window, the signal
//!   online phase detection keys on;
//! * [`column_entropies`] — Shannon entropy of each byte column, an upper
//!   bound intuition for what byte-level compressors can achieve;
//! * [`delta_profile`] — how concentrated successive address deltas are,
//!   the quantity stride/DFCM predictors exploit.
//!
//! # Examples
//!
//! ```
//! use atc_trace::analysis;
//!
//! let stream: Vec<u64> = (0..1000u64).collect();
//! assert_eq!(analysis::footprint(&stream), 1000);
//! let d = analysis::delta_profile(&stream, 4);
//! assert_eq!(d.top[0], (1, 999)); // one delta explains everything
//! ```

use std::collections::HashMap;

/// Number of distinct values in the trace.
pub fn footprint(trace: &[u64]) -> usize {
    let mut v: Vec<u64> = trace.to_vec();
    v.sort_unstable();
    v.dedup();
    v.len()
}

/// Distinct values per consecutive window of `window` addresses.
///
/// A flat curve means a stationary trace (lossy-friendly); a jagged or
/// drifting curve signals phase changes or churn.
///
/// # Panics
///
/// Panics if `window == 0`.
pub fn working_set_curve(trace: &[u64], window: usize) -> Vec<usize> {
    assert!(window > 0, "window must be positive");
    trace.chunks(window).map(footprint).collect()
}

/// Shannon entropy (bits per symbol) of each byte column, most-significant
/// first.
///
/// Cache-filtered address traces typically show near-zero entropy in the
/// high columns (the paper's null top bits and region bytes) and high
/// entropy only near the bottom — which is why unshuffling the columns
/// helps a byte-level compressor so much.
pub fn column_entropies(trace: &[u64]) -> [f64; 8] {
    let mut counts = [[0u64; 256]; 8];
    for &a in trace {
        for (j, col) in counts.iter_mut().enumerate() {
            col[((a >> (8 * (7 - j))) & 0xFF) as usize] += 1;
        }
    }
    let n = trace.len() as f64;
    std::array::from_fn(|j| {
        if trace.is_empty() {
            return 0.0;
        }
        let h: f64 = counts[j]
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.log2()
            })
            .sum();
        if h <= 0.0 {
            0.0 // avoid -0.0 for single-valued columns
        } else {
            h
        }
    })
}

/// Summary of successive-delta concentration.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaProfile {
    /// The `k` most frequent deltas with their counts, descending.
    pub top: Vec<(i64, u64)>,
    /// Total number of deltas (`trace.len() - 1`).
    pub total: u64,
    /// Fraction of deltas covered by `top`.
    pub coverage: f64,
}

/// Computes the `k` most frequent successive deltas.
///
/// High coverage by few deltas means stride predictors (and the DFCM side
/// of TCgen, and C/DC's delta correlation) will do well.
pub fn delta_profile(trace: &[u64], k: usize) -> DeltaProfile {
    let mut counts: HashMap<i64, u64> = HashMap::new();
    for w in trace.windows(2) {
        *counts.entry(w[1].wrapping_sub(w[0]) as i64).or_default() += 1;
    }
    let total = trace.len().saturating_sub(1) as u64;
    let mut top: Vec<(i64, u64)> = counts.into_iter().collect();
    top.sort_by_key(|&(d, c)| (std::cmp::Reverse(c), d));
    top.truncate(k);
    let covered: u64 = top.iter().map(|&(_, c)| c).sum();
    DeltaProfile {
        top,
        total,
        coverage: if total == 0 {
            0.0
        } else {
            covered as f64 / total as f64
        },
    }
}

/// Stationarity score in `[0, 1]`: mean pairwise similarity of per-window
/// footprints (1 = every window touches the same number of distinct blocks).
///
/// A cheap scalar proxy for "how much will lossy phase compression gain" —
/// the paper's stable traces (e.g. 458.sjeng) score near 1, the unstable
/// ones (403.gcc, 447.dealII) lower.
pub fn stationarity(trace: &[u64], window: usize) -> f64 {
    let curve = working_set_curve(trace, window);
    if curve.len() < 2 {
        return 1.0;
    }
    let mean = curve.iter().sum::<usize>() as f64 / curve.len() as f64;
    if mean == 0.0 {
        return 1.0;
    }
    let var = curve
        .iter()
        .map(|&x| {
            let d = x as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / curve.len() as f64;
    // Coefficient-of-variation mapped into (0, 1].
    1.0 / (1.0 + var.sqrt() / mean)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_counts_distinct() {
        assert_eq!(footprint(&[]), 0);
        assert_eq!(footprint(&[5, 5, 5]), 1);
        assert_eq!(footprint(&[1, 2, 3, 2, 1]), 3);
    }

    #[test]
    fn working_set_windows() {
        let trace = [1u64, 1, 2, 2, 3, 4];
        assert_eq!(working_set_curve(&trace, 2), vec![1, 1, 2]);
        assert_eq!(working_set_curve(&trace, 4), vec![2, 2]);
    }

    #[test]
    fn entropy_extremes() {
        // Constant trace: zero entropy everywhere.
        let e = column_entropies(&[0xAAAA_AAAA; 100]);
        assert!(e.iter().all(|&x| x == 0.0));
        // Uniform low byte: 8 bits in the last column, 0 elsewhere.
        let trace: Vec<u64> = (0..256u64).collect();
        let e = column_entropies(&trace);
        assert!((e[7] - 8.0).abs() < 1e-9, "low column {e:?}");
        assert!(e[..7].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn entropy_empty() {
        assert_eq!(column_entropies(&[]), [0.0; 8]);
    }

    #[test]
    fn delta_profile_stride() {
        let trace: Vec<u64> = (0..100u64).map(|i| i * 64).collect();
        let d = delta_profile(&trace, 3);
        assert_eq!(d.top[0], (64, 99));
        assert!((d.coverage - 1.0).abs() < 1e-12);
    }

    #[test]
    fn delta_profile_negative_deltas() {
        let trace = [100u64, 50, 100, 50, 100];
        let d = delta_profile(&trace, 2);
        assert_eq!(d.total, 4);
        // Both +50 and -50 occur twice; ordering ties break by delta value.
        assert_eq!(d.top.len(), 2);
        assert!(d.top.iter().any(|&(x, c)| x == -50 && c == 2));
        assert!(d.top.iter().any(|&(x, c)| x == 50 && c == 2));
    }

    #[test]
    fn stationarity_detects_stability() {
        // Stationary: repeating the same window pattern.
        let stable: Vec<u64> = (0..10_000u64).map(|i| i % 64).collect();
        // Drifting: footprint grows then shrinks per window.
        let drifting: Vec<u64> = (0..10_000u64)
            .map(|i| if (i / 1000) % 2 == 0 { i % 4 } else { i })
            .collect();
        let s1 = stationarity(&stable, 1000);
        let s2 = stationarity(&drifting, 1000);
        assert!(s1 > s2, "stable {s1} must exceed drifting {s2}");
        assert!(s1 > 0.99);
    }

    #[test]
    fn stationarity_degenerate() {
        assert_eq!(stationarity(&[], 10), 1.0);
        assert_eq!(stationarity(&[1, 2, 3], 10), 1.0);
    }
}
