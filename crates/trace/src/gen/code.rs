//! Instruction-fetch stream generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Access;

/// Instruction-fetch behaviour: sequential fetch within a function body,
/// with probabilistic calls to other functions and returns.
///
/// The L1I filter removes almost all fetches once the hot loop fits in
/// cache; what leaks through are the cold-path / large-footprint fetch
/// misses that make real filtered traces a *mix* of I and D block
/// addresses (the paper instruments all basic blocks).
///
/// # Examples
///
/// ```
/// use atc_trace::gen::CodeLoop;
/// use atc_trace::AccessKind;
///
/// let mut g = CodeLoop::new(0x40_0000, 32, 4096, 17);
/// assert_eq!(g.next().unwrap().kind, AccessKind::InstrFetch);
/// ```
#[derive(Debug, Clone)]
pub struct CodeLoop {
    text_base: u64,
    functions: u64,
    func_bytes: u64,
    /// Current function index and byte offset within it.
    cur_func: u64,
    offset: u64,
    /// Call stack of (function, return offset).
    stack: Vec<(u64, u64)>,
    rng: StdRng,
}

impl CodeLoop {
    /// Creates a code-fetch stream over `functions` functions of
    /// `func_bytes` each, laid out contiguously from `text_base`.
    ///
    /// # Panics
    ///
    /// Panics if `functions == 0` or `func_bytes < 64`.
    pub fn new(text_base: u64, functions: u64, func_bytes: u64, seed: u64) -> Self {
        assert!(functions > 0);
        assert!(func_bytes >= 64);
        Self {
            text_base,
            functions,
            func_bytes,
            cur_func: 0,
            offset: 0,
            stack: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Iterator for CodeLoop {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        let addr = self.text_base + self.cur_func * self.func_bytes + self.offset;
        let a = Access::fetch(addr);

        // Advance control flow: mostly sequential, sometimes call/branch.
        let roll: f64 = self.rng.random();
        if roll < 0.02 && self.stack.len() < 16 {
            // Call a pseudo-random callee (biased to low-numbered "hot"
            // functions).
            let callee = (self.rng.random_range(0..self.functions) * self.rng.random_range(1..=2))
                % self.functions;
            self.stack.push((self.cur_func, self.offset));
            self.cur_func = callee;
            self.offset = 0;
        } else if roll < 0.04 {
            // Return (or restart the loop body at the bottom of the stack).
            if let Some((f, o)) = self.stack.pop() {
                self.cur_func = f;
                self.offset = o;
            } else {
                self.offset = 0;
            }
        } else if roll < 0.10 {
            // Local backward branch: loop within the function.
            self.offset = self.offset.saturating_sub(self.rng.random_range(0..128));
        } else {
            self.offset += 16; // one fetch group forward
            if self.offset >= self.func_bytes {
                self.offset = 0; // fall back to function start (loop)
            }
        }
        Some(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AccessKind;

    #[test]
    fn all_fetches_within_text() {
        let functions = 8;
        let func_bytes = 1024;
        let g = CodeLoop::new(1 << 22, functions, func_bytes, 5);
        for a in g.take(10_000) {
            assert_eq!(a.kind, AccessKind::InstrFetch);
            assert!(a.addr >= 1 << 22);
            assert!(a.addr < (1 << 22) + functions * func_bytes);
        }
    }

    #[test]
    fn reuses_hot_code() {
        use std::collections::HashMap;
        let mut block_counts: HashMap<u64, u64> = HashMap::new();
        for a in CodeLoop::new(0, 16, 2048, 5).take(50_000) {
            *block_counts.entry(a.block()).or_default() += 1;
        }
        // Locality: some blocks must be fetched many times.
        let max = block_counts.values().copied().max().unwrap_or(0);
        assert!(max > 500, "expected hot blocks, max count {max}");
    }

    #[test]
    fn deterministic() {
        let a: Vec<u64> = CodeLoop::new(0, 4, 512, 3)
            .take(200)
            .map(|x| x.addr)
            .collect();
        let b: Vec<u64> = CodeLoop::new(0, 4, 512, 3)
            .take(200)
            .map(|x| x.addr)
            .collect();
        assert_eq!(a, b);
    }
}
