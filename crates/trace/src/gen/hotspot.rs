//! Skewed-popularity access over multiple regions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Access, BLOCK_BYTES};

/// Accesses `regions` separate regions with geometrically decaying
/// popularity; accesses within a region are uniform random.
///
/// Models heap-object workloads with hot/cold structure (444.namd,
/// 400.perlbench class): stationary overall (lossy-friendly) but with a
/// non-trivial address distribution across several byte columns.
///
/// # Examples
///
/// ```
/// use atc_trace::gen::Hotspot;
///
/// let g = Hotspot::new(0x2000_0000, 8, 1 << 12, 0.5, 11);
/// assert_eq!(g.take(10).count(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct Hotspot {
    base: u64,
    regions: u64,
    region_blocks: u64,
    /// Probability of choosing region 0; each next region is `decay` times
    /// less likely.
    p0: f64,
    decay: f64,
    rng: StdRng,
}

impl Hotspot {
    /// Creates a generator over `regions` regions of `region_blocks` blocks,
    /// spaced contiguously from `base`. `decay` in (0,1): popularity ratio
    /// between consecutive regions.
    ///
    /// # Panics
    ///
    /// Panics if `regions == 0`, `region_blocks == 0`, or `decay` is not in
    /// (0, 1].
    pub fn new(base: u64, regions: u64, region_blocks: u64, decay: f64, seed: u64) -> Self {
        assert!(regions > 0 && region_blocks > 0);
        assert!(decay > 0.0 && decay <= 1.0, "decay must be in (0,1]");
        // Normalize: p0 * (1 + d + d^2 + ...) = 1 over `regions` terms.
        let geo_sum = if (decay - 1.0).abs() < 1e-12 {
            regions as f64
        } else {
            (1.0 - decay.powi(regions as i32)) / (1.0 - decay)
        };
        Self {
            base,
            regions,
            region_blocks,
            p0: 1.0 / geo_sum,
            decay,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn pick_region(&mut self) -> u64 {
        let mut x: f64 = self.rng.random();
        let mut p = self.p0;
        for r in 0..self.regions {
            if x < p || r == self.regions - 1 {
                return r;
            }
            x -= p;
            p *= self.decay;
        }
        self.regions - 1
    }
}

impl Iterator for Hotspot {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        let r = self.pick_region();
        let b = self.rng.random_range(0..self.region_blocks);
        let addr = self.base + (r * self.region_blocks + b) * BLOCK_BYTES;
        Some(Access::read(addr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_zero_is_hottest() {
        let mut counts = [0u64; 4];
        let region_blocks = 64u64;
        for a in Hotspot::new(0, 4, region_blocks, 0.4, 3).take(20_000) {
            let r = a.addr / (region_blocks * BLOCK_BYTES);
            counts[r as usize] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[3]);
    }

    #[test]
    fn addresses_in_bounds() {
        let total = 4 * 64 * BLOCK_BYTES;
        for a in Hotspot::new(1 << 30, 4, 64, 0.5, 1).take(5000) {
            assert!(a.addr >= 1 << 30 && a.addr < (1 << 30) + total);
        }
    }

    #[test]
    fn uniform_decay_accepted() {
        let mut counts = [0u64; 2];
        for a in Hotspot::new(0, 2, 16, 1.0, 2).take(10_000) {
            counts[(a.addr / (16 * BLOCK_BYTES)) as usize] += 1;
        }
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((0.8..1.25).contains(&ratio), "ratio {ratio}");
    }
}
