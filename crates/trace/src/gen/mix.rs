//! Probabilistic interleave of sub-behaviours.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Access, Workload};

/// Interleaves several workloads, drawing each access from workload `i`
/// with probability `weight[i] / Σ weights`.
///
/// Real benchmarks mix behaviours at instruction granularity (code
/// fetches + a streaming array + a pointer-chased structure); `Mix`
/// reproduces that
/// fine-grained interleaving, which is what makes cache-filtered traces
/// only piecewise regular.
///
/// # Examples
///
/// ```
/// use atc_trace::gen::{Mix, Stream};
///
/// let m = Mix::new(
///     vec![
///         (3.0, Box::new(Stream::new(0, 1 << 20, 64)) as _),
///         (1.0, Box::new(Stream::new(1 << 40, 1 << 20, 64)) as _),
///     ],
///     123,
/// );
/// assert_eq!(m.take(10).count(), 10);
/// ```
pub struct Mix {
    parts: Vec<(f64, Workload)>,
    total_weight: f64,
    rng: StdRng,
}

impl std::fmt::Debug for Mix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mix")
            .field("parts", &self.parts.len())
            .field("total_weight", &self.total_weight)
            .finish()
    }
}

impl Mix {
    /// Creates a weighted mix.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or any weight is not strictly positive.
    pub fn new(parts: Vec<(f64, Workload)>, seed: u64) -> Self {
        assert!(!parts.is_empty(), "need at least one component");
        assert!(
            parts.iter().all(|(w, _)| *w > 0.0),
            "weights must be positive"
        );
        let total_weight = parts.iter().map(|(w, _)| w).sum();
        Self {
            parts,
            total_weight,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Iterator for Mix {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        let mut x: f64 = self.rng.random::<f64>() * self.total_weight;
        let last = self.parts.len() - 1;
        for (i, (w, wl)) in self.parts.iter_mut().enumerate() {
            if x < *w || i == last {
                return wl.next();
            }
            x -= *w;
        }
        unreachable!("loop always returns on the last component")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::Stream;

    #[test]
    fn respects_weights() {
        let m = Mix::new(
            vec![
                (9.0, Box::new(Stream::new(0, 1 << 20, 64)) as _),
                (1.0, Box::new(Stream::new(1 << 40, 1 << 20, 64)) as _),
            ],
            7,
        );
        let n = 20_000;
        let hot = m.take(n).filter(|a| a.addr < (1 << 40)).count();
        let frac = hot as f64 / n as f64;
        assert!((0.85..0.95).contains(&frac), "hot fraction {frac}");
    }

    #[test]
    fn deterministic() {
        let build = || {
            Mix::new(
                vec![
                    (1.0, Box::new(Stream::new(0, 1 << 16, 64)) as _),
                    (1.0, Box::new(Stream::new(1 << 30, 1 << 16, 64)) as _),
                ],
                99,
            )
        };
        let a: Vec<u64> = build().take(500).map(|x| x.addr).collect();
        let b: Vec<u64> = build().take(500).map(|x| x.addr).collect();
        assert_eq!(a, b);
    }
}
