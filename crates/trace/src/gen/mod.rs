//! Synthetic memory-behaviour generators.
//!
//! Each generator is an infinite, deterministic `Iterator<Item = Access>`;
//! randomized generators take an explicit seed so traces are reproducible.
//! They model the classic memory-access archetypes the paper's SPEC subset
//! exhibits:
//!
//! | Generator | Behaviour | SPEC archetypes |
//! |---|---|---|
//! | [`Stream`] | sequential sweeps over a big array | libquantum, lbm, milc |
//! | [`MultiStream`] | several concurrent sequential streams | bwaves, zeusmp |
//! | [`Strided`] | constant-stride walk (column sweeps) | soplex, hmmer |
//! | [`LoopNest`] | row-major 2-D nest with optional tiling | h264ref, zeusmp |
//! | [`PointerChase`] | random-permutation cycle traversal | mcf, omnetpp, astar |
//! | [`RandomAccess`] | uniform random over a working set | sjeng, gobmk |
//! | [`Hotspot`] | skewed (geometric) region popularity | namd, perlbench |
//! | [`CodeLoop`] | instruction-fetch loops with call/branch mix | all (I-stream) |
//! | [`Phased`] | time-multiplexed sub-behaviours with region shifts | gcc, dealII, lbm |
//! | [`Mix`] | probabilistic interleave of sub-behaviours | most benchmarks |

mod code;
mod hotspot;
mod mix;
mod phased;
mod pointer;
mod random;
mod stream;
mod writes;

pub use code::CodeLoop;
pub use hotspot::Hotspot;
pub use mix::Mix;
pub use phased::{Phase, Phased};
pub use pointer::PointerChase;
pub use random::RandomAccess;
pub use stream::{LoopNest, MultiStream, Stream, Strided};
pub use writes::WriteShare;
