//! Phase-structured workloads.

use crate::{Access, Workload};

/// One phase: a generator plus how many accesses it runs before the next
/// phase takes over.
pub struct Phase {
    /// The behaviour active during this phase.
    pub workload: Workload,
    /// Number of accesses the phase emits per activation.
    pub len: u64,
}

impl std::fmt::Debug for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Phase").field("len", &self.len).finish()
    }
}

impl Phase {
    /// Creates a phase running `workload` for `len` accesses.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn new(workload: Workload, len: u64) -> Self {
        assert!(len > 0, "phase length must be positive");
        Self { workload, len }
    }
}

/// Cycles through a list of phases.
///
/// Phase state is *persistent*: when a phase re-activates it resumes where
/// it left off, like a real program returning to a computation kernel. This
/// is the structure the paper's lossy compressor exploits — recurring
/// intervals with matching sorted byte-histograms (§5) — and, with
/// disjoint per-phase regions, the structure that byte translation must
/// bridge.
///
/// # Examples
///
/// ```
/// use atc_trace::gen::{Phase, Phased, Stream};
///
/// let phased = Phased::new(vec![
///     Phase::new(Box::new(Stream::new(0, 1 << 20, 64)), 100),
///     Phase::new(Box::new(Stream::new(1 << 30, 1 << 20, 64)), 100),
/// ]);
/// let addrs: Vec<u64> = phased.take(250).map(|a| a.addr).collect();
/// assert!(addrs[0] < (1 << 30));
/// assert!(addrs[100] >= (1 << 30));
/// assert!(addrs[200] < (1 << 30)); // back to phase 0, resumed
/// ```
#[derive(Debug)]
pub struct Phased {
    phases: Vec<Phase>,
    cur: usize,
    emitted_in_phase: u64,
}

impl Phased {
    /// Creates a cyclic phase schedule.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty.
    pub fn new(phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "need at least one phase");
        Self {
            phases,
            cur: 0,
            emitted_in_phase: 0,
        }
    }

    /// Index of the currently active phase.
    pub fn current_phase(&self) -> usize {
        self.cur
    }
}

impl Iterator for Phased {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        if self.emitted_in_phase == self.phases[self.cur].len {
            self.emitted_in_phase = 0;
            self.cur = (self.cur + 1) % self.phases.len();
        }
        self.emitted_in_phase += 1;
        self.phases[self.cur].workload.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::Stream;

    fn stream(base: u64) -> Workload {
        Box::new(Stream::new(base, 1 << 16, 64))
    }

    #[test]
    fn cycles_between_phases() {
        let p = Phased::new(vec![
            Phase::new(stream(0), 10),
            Phase::new(stream(1 << 40), 5),
        ]);
        let addrs: Vec<u64> = p.take(30).map(|a| a.addr).collect();
        assert!(addrs[..10].iter().all(|&a| a < (1 << 40)));
        assert!(addrs[10..15].iter().all(|&a| a >= (1 << 40)));
        assert!(addrs[15..25].iter().all(|&a| a < (1 << 40)));
    }

    #[test]
    fn phase_state_persists() {
        let p = Phased::new(vec![
            Phase::new(stream(0), 3),
            Phase::new(stream(1 << 40), 1),
        ]);
        let addrs: Vec<u64> = p.take(8).map(|a| a.addr).collect();
        // Phase 0 resumes at offset 3*64 after phase 1 interleaves.
        assert_eq!(addrs[4], 3 * 64);
    }

    #[test]
    fn single_phase_is_transparent() {
        let p = Phased::new(vec![Phase::new(stream(0), 7)]);
        let direct: Vec<u64> = Stream::new(0, 1 << 16, 64)
            .take(20)
            .map(|a| a.addr)
            .collect();
        let phased: Vec<u64> = p.take(20).map(|a| a.addr).collect();
        assert_eq!(direct, phased);
    }
}
