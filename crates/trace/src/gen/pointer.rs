//! Pointer-chasing over a random permutation cycle.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Access, BLOCK_BYTES};

/// Traverses a random single-cycle permutation of `blocks` blocks.
///
/// Every access depends on the previous one, the visit order is
/// pseudo-random, and the cycle repeats with period `blocks` — the classic
/// linked-list / graph workload (429.mcf, 471.omnetpp, 473.astar class).
/// Unlike [`crate::gen::RandomAccess`] the trace is *deterministic given the
/// permutation*, so its miss stream is periodic: hard for byte-level
/// compressors at short range, easy for lossy phase detection at interval
/// range.
///
/// # Examples
///
/// ```
/// use atc_trace::gen::PointerChase;
///
/// let g = PointerChase::new(0, 512, 3);
/// let first_lap: Vec<u64> = g.take(512).map(|a| a.addr).collect();
/// // A single cycle visits every block exactly once per lap.
/// let mut sorted = first_lap.clone();
/// sorted.sort_unstable();
/// sorted.dedup();
/// assert_eq!(sorted.len(), 512);
/// ```
#[derive(Debug, Clone)]
pub struct PointerChase {
    base: u64,
    next: Vec<u32>,
    cur: u32,
}

impl PointerChase {
    /// Builds a single-cycle permutation over `blocks` blocks (Sattolo's
    /// algorithm) and starts chasing at element 0.
    ///
    /// # Panics
    ///
    /// Panics if `blocks < 2` or `blocks > u32::MAX as u64`.
    pub fn new(base: u64, blocks: u64, seed: u64) -> Self {
        assert!((2..=u32::MAX as u64).contains(&blocks));
        let n = blocks as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        // Sattolo's shuffle produces a uniform single-cycle permutation.
        let mut perm: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            let j = rng.random_range(0..i);
            perm.swap(i, j);
        }
        // next[perm[i]] = perm[(i + 1) % n] expressed directly:
        let mut next = vec![0u32; n];
        for i in 0..n {
            next[perm[i] as usize] = perm[(i + 1) % n];
        }
        Self { base, next, cur: 0 }
    }

    /// Number of blocks in the cycle.
    pub fn len(&self) -> usize {
        self.next.len()
    }

    /// Always false: the cycle has at least two blocks.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl Iterator for PointerChase {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        let a = Access::read(self.base + self.cur as u64 * BLOCK_BYTES);
        self.cur = self.next[self.cur as usize];
        Some(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visits_all_blocks_each_lap() {
        use std::collections::HashSet;
        let g = PointerChase::new(0, 100, 9);
        let lap: HashSet<u64> = g.take(100).map(|a| a.addr).collect();
        assert_eq!(lap.len(), 100);
    }

    #[test]
    fn periodic() {
        let mut g = PointerChase::new(0, 64, 1);
        let lap1: Vec<u64> = g.by_ref().take(64).map(|a| a.addr).collect();
        let lap2: Vec<u64> = g.by_ref().take(64).map(|a| a.addr).collect();
        assert_eq!(lap1, lap2);
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = PointerChase::new(0, 32, 7)
            .take(32)
            .map(|x| x.addr)
            .collect();
        let b: Vec<u64> = PointerChase::new(0, 32, 7)
            .take(32)
            .map(|x| x.addr)
            .collect();
        let c: Vec<u64> = PointerChase::new(0, 32, 8)
            .take(32)
            .map(|x| x.addr)
            .collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn minimum_size() {
        let g = PointerChase::new(0, 2, 0);
        let addrs: Vec<u64> = g.take(4).map(|a| a.addr).collect();
        assert_eq!(addrs, vec![0, 64, 0, 64]);
    }
}
