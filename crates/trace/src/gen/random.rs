//! Uniform random access over a fixed working set.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Access, BLOCK_BYTES};

/// Uniform random block accesses over a working set of `blocks` blocks.
///
/// This is the paper's canonical *stationary-but-incompressible* behaviour
/// (§5's motivating example and the Figure 8 random trace): lossless
/// compressors can do little, but every interval "looks like" every other,
/// so lossy phase compression collapses the trace to a single chunk.
///
/// # Examples
///
/// ```
/// use atc_trace::gen::RandomAccess;
///
/// let mut g = RandomAccess::new(0x1000_0000, 1 << 14, 7);
/// let a = g.next().unwrap();
/// assert!(a.addr >= 0x1000_0000);
/// ```
#[derive(Debug, Clone)]
pub struct RandomAccess {
    base: u64,
    blocks: u64,
    rng: StdRng,
}

impl RandomAccess {
    /// Creates a generator over `blocks` 64-byte blocks starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `blocks == 0`.
    pub fn new(base: u64, blocks: u64, seed: u64) -> Self {
        assert!(blocks > 0);
        Self {
            base,
            blocks,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Iterator for RandomAccess {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        let b = self.rng.random_range(0..self.blocks);
        Some(Access::read(self.base + b * BLOCK_BYTES))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_in_region() {
        let g = RandomAccess::new(1 << 20, 256, 1);
        for a in g.take(10_000) {
            assert!(a.addr >= 1 << 20);
            assert!(a.addr < (1 << 20) + 256 * BLOCK_BYTES);
            assert_eq!(a.addr % BLOCK_BYTES, 0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = RandomAccess::new(0, 1024, 42)
            .take(100)
            .map(|x| x.addr)
            .collect();
        let b: Vec<u64> = RandomAccess::new(0, 1024, 42)
            .take(100)
            .map(|x| x.addr)
            .collect();
        let c: Vec<u64> = RandomAccess::new(0, 1024, 43)
            .take(100)
            .map(|x| x.addr)
            .collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn covers_working_set() {
        use std::collections::HashSet;
        let seen: HashSet<u64> = RandomAccess::new(0, 64, 5)
            .take(5000)
            .map(|a| a.addr)
            .collect();
        assert!(
            seen.len() > 60,
            "expected near-full coverage, got {}",
            seen.len()
        );
    }
}
