//! Sequential, strided, multi-stream and loop-nest generators.

use crate::Access;

/// Sequential sweep over a region, wrapping at the end.
///
/// Models streaming kernels (STREAM triad, stencil sweeps): the cache
/// filters almost everything except one compulsory/capacity miss per block,
/// so the filtered trace is near-arithmetic and compresses extremely well —
/// the paper's 410/433/462/470 class.
///
/// # Examples
///
/// ```
/// use atc_trace::gen::Stream;
///
/// let mut s = Stream::new(0, 128, 64);
/// let a: Vec<u64> = s.by_ref().take(3).map(|x| x.addr).collect();
/// assert_eq!(a, vec![0, 64, 0]); // wraps after region_bytes
/// ```
#[derive(Debug, Clone)]
pub struct Stream {
    base: u64,
    region_bytes: u64,
    step: u64,
    offset: u64,
}

impl Stream {
    /// Creates a sweep starting at `base`, wrapping every `region_bytes`,
    /// advancing `step` bytes per access.
    ///
    /// # Panics
    ///
    /// Panics if `region_bytes == 0` or `step == 0`.
    pub fn new(base: u64, region_bytes: u64, step: u64) -> Self {
        assert!(region_bytes > 0 && step > 0);
        Self {
            base,
            region_bytes,
            step,
            offset: 0,
        }
    }
}

impl Iterator for Stream {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        let a = Access::read(self.base + self.offset);
        self.offset += self.step;
        if self.offset >= self.region_bytes {
            self.offset = 0;
        }
        Some(a)
    }
}

/// Constant-stride walk (stride may exceed the block size), wrapping.
///
/// With stride > 64 B every access touches a new block, so the *filtered*
/// trace is a clean arithmetic progression — matrix column sweeps
/// (450.soplex-like behaviour).
#[derive(Debug, Clone)]
pub struct Strided {
    base: u64,
    region_bytes: u64,
    stride: u64,
    offset: u64,
    /// Lap counter: each wrap shifts the start by one element so successive
    /// laps touch different cache sets, like a column-major sweep.
    lap: u64,
    lap_shift: u64,
}

impl Strided {
    /// Creates a strided walk.
    ///
    /// `lap_shift` is added to the start offset after each wrap (0 keeps
    /// laps identical).
    ///
    /// # Panics
    ///
    /// Panics if `region_bytes == 0` or `stride == 0`.
    pub fn new(base: u64, region_bytes: u64, stride: u64, lap_shift: u64) -> Self {
        assert!(region_bytes > 0 && stride > 0);
        Self {
            base,
            region_bytes,
            stride,
            offset: 0,
            lap: 0,
            lap_shift,
        }
    }
}

impl Iterator for Strided {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        let start = (self.lap * self.lap_shift) % self.stride.max(1);
        let a = Access::read(self.base + (start + self.offset) % self.region_bytes);
        self.offset += self.stride;
        if self.offset >= self.region_bytes {
            self.offset = 0;
            self.lap += 1;
        }
        Some(a)
    }
}

/// Several concurrent sequential streams, visited round-robin.
///
/// Models multi-array kernels (`a[i] = b[i] + c[i]`): the filtered trace
/// interleaves several arithmetic progressions (the paper's 410.bwaves /
/// 434.zeusmp class).
#[derive(Debug, Clone)]
pub struct MultiStream {
    streams: Vec<Stream>,
    next: usize,
}

impl MultiStream {
    /// Creates `n` streams of `region_bytes` each, spaced `gap_bytes` apart
    /// starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(base: u64, n: usize, region_bytes: u64, gap_bytes: u64, step: u64) -> Self {
        assert!(n > 0, "need at least one stream");
        let streams = (0..n as u64)
            .map(|i| Stream::new(base + i * gap_bytes, region_bytes, step))
            .collect();
        Self { streams, next: 0 }
    }
}

impl Iterator for MultiStream {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        let a = self.streams[self.next].next();
        self.next = (self.next + 1) % self.streams.len();
        a
    }
}

/// Row-major 2-D loop nest with optional tiling, repeated forever.
///
/// Models dense-matrix and image/video kernels (464.h264ref-like): the
/// filtered trace is piecewise-arithmetic with a period of one frame/matrix.
#[derive(Debug, Clone)]
pub struct LoopNest {
    base: u64,
    rows: u64,
    cols: u64,
    elem: u64,
    row_pitch: u64,
    tile: u64,
    /// (tile_row, tile_col, row_in_tile, col_in_tile) cursor.
    cursor: (u64, u64, u64, u64),
}

impl LoopNest {
    /// Creates a nest over a `rows x cols` array of `elem`-byte elements
    /// with `row_pitch` bytes between row starts. `tile` of 0 disables
    /// tiling.
    ///
    /// # Panics
    ///
    /// Panics if `rows`, `cols`, or `elem` is zero.
    pub fn new(base: u64, rows: u64, cols: u64, elem: u64, row_pitch: u64, tile: u64) -> Self {
        assert!(rows > 0 && cols > 0 && elem > 0);
        let tile = if tile == 0 { rows.max(cols) } else { tile };
        Self {
            base,
            rows,
            cols,
            elem,
            row_pitch,
            tile,
            cursor: (0, 0, 0, 0),
        }
    }
}

impl Iterator for LoopNest {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        let (tr, tc, r, c) = self.cursor;
        let row = tr * self.tile + r;
        let col = tc * self.tile + c;
        let addr = self.base + row * self.row_pitch + col * self.elem;

        // Advance: col-in-tile, row-in-tile, tile-col, tile-row.
        let tiles_r = self.rows.div_ceil(self.tile);
        let tiles_c = self.cols.div_ceil(self.tile);
        let tile_rows = self.tile.min(self.rows - tr * self.tile);
        let tile_cols = self.tile.min(self.cols - tc * self.tile);
        let mut next = (tr, tc, r, c + 1);
        if next.3 >= tile_cols {
            next = (tr, tc, r + 1, 0);
            if next.2 >= tile_rows {
                next = (tr, tc + 1, 0, 0);
                if next.1 >= tiles_c {
                    next = (tr + 1, 0, 0, 0);
                    if next.0 >= tiles_r {
                        next = (0, 0, 0, 0);
                    }
                }
            }
        }
        self.cursor = next;
        Some(Access::read(addr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_wraps() {
        let addrs: Vec<u64> = Stream::new(100, 192, 64).take(5).map(|a| a.addr).collect();
        assert_eq!(addrs, vec![100, 164, 228, 100, 164]);
    }

    #[test]
    fn multistream_interleaves() {
        let addrs: Vec<u64> = MultiStream::new(0, 2, 1024, 4096, 64)
            .take(4)
            .map(|a| a.addr)
            .collect();
        assert_eq!(addrs, vec![0, 4096, 64, 4160]);
    }

    #[test]
    fn strided_covers_region() {
        let g = Strided::new(0, 640, 128, 0);
        let addrs: Vec<u64> = g.take(5).map(|a| a.addr).collect();
        assert_eq!(addrs, vec![0, 128, 256, 384, 512]);
    }

    #[test]
    fn loopnest_row_major_untitled() {
        let g = LoopNest::new(0, 2, 3, 8, 100, 0);
        let addrs: Vec<u64> = g.take(7).map(|a| a.addr).collect();
        assert_eq!(addrs, vec![0, 8, 16, 100, 108, 116, 0]);
    }

    #[test]
    fn loopnest_tiled_visits_all() {
        use std::collections::HashSet;
        let g = LoopNest::new(0, 4, 4, 1, 4, 2);
        let seen: HashSet<u64> = g.take(16).map(|a| a.addr).collect();
        assert_eq!(seen.len(), 16, "one pass must touch all 16 elements");
    }

    #[test]
    fn infinite_iterators() {
        assert_eq!(Stream::new(0, 64, 64).take(1000).count(), 1000);
        assert_eq!(LoopNest::new(0, 2, 2, 8, 16, 0).take(1000).count(), 1000);
    }
}
