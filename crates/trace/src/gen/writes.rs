//! Adapter turning a share of data reads into writes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Access, AccessKind, Workload};

/// Wraps a workload, converting a random `fraction` of its data reads into
/// data writes.
///
/// Generators model *where* a workload touches memory; store/load balance
/// is orthogonal, so it lives in this adapter. Writes matter only to the
/// dirty bits of the filtering cache — they mark which evictions become the
/// tagged write-back records of the paper's §2 trace format.
///
/// # Examples
///
/// ```
/// use atc_trace::gen::{Stream, WriteShare};
/// use atc_trace::AccessKind;
///
/// let w = WriteShare::new(Box::new(Stream::new(0, 1 << 20, 8)), 0.5, 7);
/// let kinds: Vec<AccessKind> = w.take(100).map(|a| a.kind).collect();
/// assert!(kinds.contains(&AccessKind::DataWrite));
/// assert!(kinds.contains(&AccessKind::DataRead));
/// ```
pub struct WriteShare {
    inner: Workload,
    fraction: f64,
    rng: StdRng,
}

impl std::fmt::Debug for WriteShare {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriteShare")
            .field("fraction", &self.fraction)
            .finish()
    }
}

impl WriteShare {
    /// Creates the adapter.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `[0, 1]`.
    pub fn new(inner: Workload, fraction: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "write fraction must be in [0, 1]"
        );
        Self {
            inner,
            fraction,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Iterator for WriteShare {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        let mut a = self.inner.next()?;
        if a.kind == AccessKind::DataRead && self.rng.random::<f64>() < self.fraction {
            a.kind = AccessKind::DataWrite;
        }
        Some(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{CodeLoop, Stream};

    #[test]
    fn converts_roughly_the_requested_share() {
        let w = WriteShare::new(Box::new(Stream::new(0, 1 << 20, 8)), 0.3, 1);
        let n = 10_000;
        let writes = w
            .take(n)
            .filter(|a| a.kind == AccessKind::DataWrite)
            .count();
        let frac = writes as f64 / n as f64;
        assert!((0.25..0.35).contains(&frac), "write share {frac}");
    }

    #[test]
    fn never_touches_instruction_fetches() {
        let w = WriteShare::new(Box::new(CodeLoop::new(0, 4, 512, 2)), 1.0, 3);
        assert!(w.take(1000).all(|a| a.kind == AccessKind::InstrFetch));
    }

    #[test]
    fn zero_fraction_is_identity() {
        let base: Vec<_> = Stream::new(0, 1 << 16, 8).take(500).collect();
        let adapted: Vec<_> = WriteShare::new(Box::new(Stream::new(0, 1 << 16, 8)), 0.0, 9)
            .take(500)
            .collect();
        assert_eq!(base, adapted);
    }

    #[test]
    fn addresses_unchanged() {
        let base: Vec<u64> = Stream::new(0, 1 << 16, 8)
            .take(500)
            .map(|a| a.addr)
            .collect();
        let adapted: Vec<u64> = WriteShare::new(Box::new(Stream::new(0, 1 << 16, 8)), 0.7, 9)
            .take(500)
            .map(|a| a.addr)
            .collect();
        assert_eq!(base, adapted);
    }
}
