//! Raw trace I/O: sequences of little-endian 64-bit values.
//!
//! This is the paper's input format: "the simplest format that an address
//! trace can have: just sequences of 64-bit values" (§2). Files produced
//! here are what `bin2atc` consumes and `atc2bin` emits.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Writes `values` to `path` as little-endian u64s.
///
/// # Errors
///
/// Propagates I/O errors from file creation and writing.
///
/// # Examples
///
/// ```no_run
/// # fn main() -> std::io::Result<()> {
/// atc_trace::io::write_trace("trace.bin", &[1, 2, 3])?;
/// assert_eq!(atc_trace::io::read_trace("trace.bin")?, vec![1, 2, 3]);
/// # Ok(())
/// # }
/// ```
pub fn write_trace<P: AsRef<Path>>(path: P, values: &[u64]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    for &v in values {
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()
}

/// Reads a whole trace file written by [`write_trace`].
///
/// # Errors
///
/// Fails on I/O errors or if the file length is not a multiple of 8.
pub fn read_trace<P: AsRef<Path>>(path: P) -> io::Result<Vec<u64>> {
    let mut r = BufReader::new(File::open(path)?);
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    if bytes.len() % 8 != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "trace file length is not a multiple of 8",
        ));
    }
    Ok(bytes
        .chunks_exact(8)
        // atclint: allow(library-unwrap) -- infallible: chunks_exact(8)
        // yields only 8-byte slices.
        .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect())
}

/// Streams u64 values out of any reader.
///
/// Yields `Err` once on a trailing partial value, then stops.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    inner: R,
    done: bool,
}

impl<R: Read> TraceReader<R> {
    /// Wraps a byte reader.
    pub fn new(inner: R) -> Self {
        Self { inner, done: false }
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = io::Result<u64>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let mut buf = [0u8; 8];
        let mut filled = 0;
        while filled < 8 {
            match self.inner.read(&mut buf[filled..]) {
                Ok(0) => {
                    self.done = true;
                    return if filled == 0 {
                        None
                    } else {
                        Some(Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "trailing partial 64-bit value",
                        )))
                    };
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
        Some(Ok(u64::from_le_bytes(buf)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("atc_trace_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.bin");
        let values = vec![0u64, 1, u64::MAX, 0xDEAD_BEEF];
        write_trace(&path, &values).unwrap();
        assert_eq!(read_trace(&path).unwrap(), values);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reader_streams() {
        let mut bytes = Vec::new();
        for v in [5u64, 6, 7] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let vals: Vec<u64> = TraceReader::new(&bytes[..]).map(|r| r.unwrap()).collect();
        assert_eq!(vals, vec![5, 6, 7]);
    }

    #[test]
    fn partial_value_is_error() {
        let bytes = [1u8, 2, 3]; // not a multiple of 8
        let mut it = TraceReader::new(&bytes[..]);
        assert!(it.next().unwrap().is_err());
        assert!(it.next().is_none());
    }

    #[test]
    fn empty_reader() {
        let mut it = TraceReader::new(&[][..]);
        assert!(it.next().is_none());
    }
}
