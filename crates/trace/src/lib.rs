//! Address-trace model and synthetic workload generation.
//!
//! The paper collects cache-filtered address traces from 22 SPEC CPU2006
//! benchmarks with Pin. Neither Pin nor SPEC is available to a
//! self-contained reproduction, so this crate provides the substitute
//! substrate: a family of seeded, deterministic *memory-behaviour
//! generators* ([`gen`]) and 22 named profiles ([`spec`]) that land in the
//! same qualitative compressibility classes the paper reports (streaming,
//! pointer-chasing, phased, unstable, …). The generators produce raw
//! instruction/data accesses; `atc-cache` filters them through the paper's
//! L1 configuration to yield the cache-filtered block-address traces that
//! ATC compresses.
//!
//! # Examples
//!
//! ```
//! use atc_trace::gen::Stream;
//! use atc_trace::{Access, AccessKind};
//!
//! let mut s = Stream::new(0x1000_0000, 1 << 20, 64);
//! let a: Access = s.next().unwrap();
//! assert_eq!(a.kind, AccessKind::DataRead);
//! assert_eq!(a.addr, 0x1000_0000);
//! ```

pub mod analysis;
pub mod gen;
pub mod io;
pub mod spec;

/// Kind of memory access, determining which L1 cache filters it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Instruction fetch (filtered by the L1 instruction cache).
    InstrFetch,
    /// Data load.
    DataRead,
    /// Data store.
    DataWrite,
}

/// A single memory access: a byte address plus its kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Access {
    /// Byte address. Generators keep addresses below 2^58 so that block
    /// addresses (address >> 6) have their 6 most-significant bits null,
    /// matching the paper's trace format.
    pub addr: u64,
    /// Access kind.
    pub kind: AccessKind,
}

impl Access {
    /// Creates a data-read access.
    pub fn read(addr: u64) -> Self {
        Self {
            addr,
            kind: AccessKind::DataRead,
        }
    }

    /// Creates a data-write access.
    pub fn write(addr: u64) -> Self {
        Self {
            addr,
            kind: AccessKind::DataWrite,
        }
    }

    /// Creates an instruction-fetch access.
    pub fn fetch(addr: u64) -> Self {
        Self {
            addr,
            kind: AccessKind::InstrFetch,
        }
    }

    /// The 64-byte block address (`addr >> 6`).
    pub fn block(&self) -> u64 {
        self.addr >> BLOCK_SHIFT
    }
}

/// log2 of the cache block size used throughout the paper (64-byte blocks).
pub const BLOCK_SHIFT: u32 = 6;

/// Cache block size in bytes.
pub const BLOCK_BYTES: u64 = 1 << BLOCK_SHIFT;

/// A boxed infinite access stream.
///
/// All generators are infinite; callers `take(n)` what they need, which
/// mirrors how the paper truncates traces to the first 100 M / 1 B filtered
/// addresses.
pub type Workload = Box<dyn Iterator<Item = Access> + Send>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_math() {
        assert_eq!(Access::read(0).block(), 0);
        assert_eq!(Access::read(63).block(), 0);
        assert_eq!(Access::read(64).block(), 1);
        assert_eq!(Access::read(0x1000).block(), 0x40);
    }

    #[test]
    fn constructors_set_kind() {
        assert_eq!(Access::read(1).kind, AccessKind::DataRead);
        assert_eq!(Access::write(1).kind, AccessKind::DataWrite);
        assert_eq!(Access::fetch(1).kind, AccessKind::InstrFetch);
    }
}
