//! Named workload profiles standing in for the paper's SPEC CPU2006 subset.
//!
//! The paper evaluates on 22 SPEC CPU2006 benchmarks traced with Pin
//! (x86-64, all basic blocks and memory instructions). SPEC binaries and
//! inputs are proprietary, so each benchmark is replaced by a synthetic
//! profile engineered to land in the same qualitative class the paper's
//! results reveal for it:
//!
//! * *streaming* traces (410, 433, 462, 470) compress to well under 1 bit
//!   per address;
//! * *pointer-chasing / random* traces (429, 458, 401) are nearly
//!   incompressible losslessly but collapse under lossy phase compression
//!   because they are stationary;
//! * *unstable* traces (403, 447) resist lossy compression because interval
//!   signatures keep changing;
//! * the rest are mixtures in between.
//!
//! Profiles are deterministic per seed, so every experiment is exactly
//! reproducible.
//!
//! # Examples
//!
//! ```
//! let p = atc_trace::spec::profile("429.mcf").unwrap();
//! let accesses: Vec<_> = p.workload(1).take(1000).collect();
//! assert_eq!(accesses.len(), 1000);
//! ```

use crate::gen::{
    CodeLoop, Hotspot, LoopNest, Mix, MultiStream, Phase, Phased, PointerChase, RandomAccess,
    Stream, Strided,
};
use crate::Workload;

/// Qualitative compressibility class (from the paper's measured behaviour).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class {
    /// Near-arithmetic filtered trace; sub-bit BPA.
    Streaming,
    /// Dominated by random or pointer-chasing accesses; high lossless BPA,
    /// large lossy gain (stationary).
    Irregular,
    /// Phase signatures keep changing; small lossy gain.
    Unstable,
    /// In-between mixtures.
    Mixed,
}

/// A named synthetic benchmark profile.
pub struct Profile {
    name: &'static str,
    class: Class,
    builder: fn(u64) -> Workload,
}

impl std::fmt::Debug for Profile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Profile")
            .field("name", &self.name)
            .field("class", &self.class)
            .finish()
    }
}

impl Profile {
    /// Benchmark name, e.g. `"429.mcf"`.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Three-digit SPEC number prefix, e.g. `"429"`.
    pub fn number(&self) -> &'static str {
        &self.name[..3]
    }

    /// Qualitative class.
    pub fn class(&self) -> Class {
        self.class
    }

    /// Instantiates the profile's access stream with a seed.
    ///
    /// The same `(profile, seed)` pair always yields the same trace.
    pub fn workload(&self, seed: u64) -> Workload {
        (self.builder)(seed)
    }
}

// Region base addresses. Distinct bases per component keep code, heap and
// array spaces apart like a real process image; all stay below 2^42 so
// block addresses have null top bits.
const TEXT: u64 = 0x0000_0040_0000; // 4 MiB: program text
const HEAP: u64 = 0x0001_0000_0000;
const ARR1: u64 = 0x0010_0000_0000;
const ARR2: u64 = 0x0020_0000_0000;
const ARR3: u64 = 0x0030_0000_0000;
const STACKISH: u64 = 0x007F_0000_0000;

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

fn code(seed: u64, functions: u64, func_bytes: u64) -> Workload {
    Box::new(CodeLoop::new(TEXT, functions, func_bytes, seed))
}

/// 400.perlbench: large interpreted code footprint + hot hash/heap objects.
fn b400(seed: u64) -> Workload {
    Box::new(Mix::new(
        vec![
            (3.0, code(seed, 96, 1536)), // ~144 KB text > L1I
            (2.0, Box::new(Hotspot::new(HEAP, 12, KB, 0.75, seed ^ 1))),
            (1.0, Box::new(Stream::new(ARR1, 2 * MB, 8))),
        ],
        seed ^ 2,
    ))
}

/// 401.bzip2: block-sorting compressor: streaming source + random dictionary.
fn b401(seed: u64) -> Workload {
    Box::new(Mix::new(
        vec![
            (2.0, Box::new(Stream::new(ARR1, 8 * MB, 8))),
            (3.0, Box::new(RandomAccess::new(HEAP, 6 * KB, seed ^ 3))),
            (1.0, code(seed, 12, 1024)),
        ],
        seed ^ 4,
    ))
}

/// 403.gcc: compiler passes: many short, distinct, drifting phases.
fn b403(seed: u64) -> Workload {
    let mut phases = Vec::new();
    // Eleven structurally different behaviours over eleven regions with
    // coprime-ish lengths: interval signatures rarely repeat.
    for (i, len) in [
        170_000u64, 230_000, 130_000, 310_000, 190_000, 110_000, 270_000, 150_000, 350_000,
        210_000, 250_000,
    ]
    .iter()
    .enumerate()
    {
        let base = ARR1 + (i as u64) * 0x0001_0000_0000;
        let wl: Workload = match i % 5 {
            0 => Box::new(Strided::new(
                base,
                (3 + i as u64) * MB,
                192 + 64 * i as u64,
                64,
            )),
            1 => Box::new(RandomAccess::new(
                base,
                (8 + 4 * i as u64) * KB,
                seed ^ i as u64,
            )),
            2 => Box::new(Hotspot::new(
                base,
                8 + i as u64,
                KB,
                0.7,
                seed ^ (i as u64) << 3,
            )),
            3 => Box::new(LoopNest::new(base, 96 + i as u64 * 32, 512, 8, 8 * KB, 0)),
            _ => Box::new(PointerChase::new(
                base,
                (32 + 16 * i as u64) * KB,
                seed ^ 0x55 ^ i as u64,
            )),
        };
        phases.push(Phase::new(wl, *len));
    }
    let data: Workload = Box::new(Phased::new(phases));
    Box::new(Mix::new(
        vec![(2.0, code(seed, 128, 2048)), (3.0, data)], // 256 KB text
        seed ^ 6,
    ))
}

/// 410.bwaves: block tridiagonal solver: several big array streams.
fn b410(seed: u64) -> Workload {
    let _ = seed;
    Box::new(Mix::new(
        vec![
            (
                8.0,
                Box::new(MultiStream::new(ARR1, 5, 24 * MB, 0x0001_0000_0000, 8)),
            ),
            (1.0, code(seed, 4, 512)),
        ],
        seed ^ 7,
    ))
}

/// 429.mcf: network simplex: pointer chasing over a huge arc array.
fn b429(seed: u64) -> Workload {
    Box::new(Mix::new(
        vec![
            (5.0, Box::new(PointerChase::new(HEAP, 64 * KB, seed ^ 8))), // 4 MB of blocks
            (1.0, Box::new(Stream::new(ARR1, 4 * MB, 8))),
            (1.0, code(seed, 6, 768)),
        ],
        seed ^ 9,
    ))
}

/// 433.milc: lattice QCD: long unit-stride sweeps.
fn b433(seed: u64) -> Workload {
    Box::new(Mix::new(
        vec![
            (
                9.0,
                Box::new(MultiStream::new(ARR1, 3, 32 * MB, 0x0001_0000_0000, 16)),
            ),
            (1.0, code(seed, 4, 512)),
        ],
        seed ^ 10,
    ))
}

/// 434.zeusmp: astrophysics stencil: loop nests with row strides.
fn b434(seed: u64) -> Workload {
    Box::new(Mix::new(
        vec![
            (4.0, Box::new(LoopNest::new(ARR1, 512, 2048, 8, 32 * KB, 0))),
            (
                3.0,
                Box::new(MultiStream::new(ARR2, 4, 8 * MB, 0x0001_0000_0000, 8)),
            ),
            (1.0, code(seed, 6, 1024)),
        ],
        seed ^ 11,
    ))
}

/// 435.gromacs: molecular dynamics: neighbour lists (stationary random).
fn b435(seed: u64) -> Workload {
    Box::new(Mix::new(
        vec![
            (3.0, Box::new(RandomAccess::new(HEAP, 3 * KB, seed ^ 12))),
            (2.0, Box::new(PointerChase::new(ARR1, 24 * KB, seed ^ 13))),
            (1.0, Box::new(Stream::new(ARR2, 4 * MB, 8))),
            (1.0, code(seed, 8, 1024)),
        ],
        seed ^ 14,
    ))
}

/// 444.namd: molecular dynamics: hot patch lists.
fn b444(seed: u64) -> Workload {
    Box::new(Mix::new(
        vec![
            (4.0, Box::new(Hotspot::new(HEAP, 12, 512, 0.75, seed ^ 15))),
            (
                2.0,
                Box::new(LoopNest::new(ARR1, 256, 1024, 16, 16 * KB, 8)),
            ),
            (1.0, code(seed, 10, 1024)),
        ],
        seed ^ 16,
    ))
}

/// 445.gobmk: game tree search: random board accesses + big code.
fn b445(seed: u64) -> Workload {
    Box::new(Mix::new(
        vec![
            (3.0, Box::new(RandomAccess::new(HEAP, 4 * KB, seed ^ 17))),
            (
                2.0,
                Box::new(Hotspot::new(STACKISH, 8, 256, 0.7, seed ^ 18)),
            ),
            (2.0, code(seed, 64, 1536)), // 96 KB text
        ],
        seed ^ 19,
    ))
}

/// 447.dealII: adaptive FEM: drifting sparse structures (unstable).
fn b447(seed: u64) -> Workload {
    let mut phases = Vec::new();
    for (i, len) in [
        90_000u64, 140_000, 200_000, 120_000, 260_000, 160_000, 100_000, 300_000, 180_000,
    ]
    .iter()
    .enumerate()
    {
        let base = ARR2 + (i as u64) * 0x0000_4000_0000;
        let wl: Workload = match i % 3 {
            0 => Box::new(Strided::new(
                base,
                (2 + i as u64) * MB,
                128 + 32 * i as u64,
                96,
            )),
            1 => Box::new(PointerChase::new(
                base,
                (24 + 8 * i as u64) * KB,
                seed ^ 20 ^ i as u64,
            )),
            _ => Box::new(Hotspot::new(
                base,
                6 + i as u64,
                2 * KB,
                0.6,
                seed ^ 21 ^ i as u64,
            )),
        };
        phases.push(Phase::new(wl, *len));
    }
    let data: Workload = Box::new(Phased::new(phases));
    Box::new(Mix::new(
        vec![(1.0, code(seed, 48, 1536)), (3.0, data)],
        seed ^ 22,
    ))
}

/// 450.soplex: simplex LP: column sweeps (strided) + pricing scans.
fn b450(seed: u64) -> Workload {
    Box::new(Mix::new(
        vec![
            (3.0, Box::new(Strided::new(ARR1, 16 * MB, 4 * KB, 8))),
            (2.0, Box::new(Stream::new(ARR2, 8 * MB, 8))),
            (1.0, Box::new(RandomAccess::new(HEAP, 16 * KB, seed ^ 23))),
            (1.0, code(seed, 10, 1024)),
        ],
        seed ^ 24,
    ))
}

/// 453.povray: ray tracer: tiny working set, periodic misses.
fn b453(seed: u64) -> Workload {
    Box::new(Mix::new(
        vec![
            (4.0, Box::new(Stream::new(ARR1, 96 * KB, 8))),
            (2.0, Box::new(Strided::new(HEAP, 512 * KB, 256, 0))),
            (1.0, code(seed, 20, 1024)),
        ],
        seed ^ 26,
    ))
}

/// 456.hmmer: profile HMM: regular dynamic-programming sweeps.
fn b456(seed: u64) -> Workload {
    Box::new(Mix::new(
        vec![
            (5.0, Box::new(LoopNest::new(ARR1, 128, 8192, 4, 32 * KB, 0))),
            (2.0, Box::new(Stream::new(ARR2, 2 * MB, 8))),
            (1.0, code(seed, 4, 768)),
        ],
        seed ^ 27,
    ))
}

/// 458.sjeng: chess: transposition-table lookups (stationary random).
fn b458(seed: u64) -> Workload {
    Box::new(Mix::new(
        vec![
            (5.0, Box::new(RandomAccess::new(HEAP, 16 * KB, seed ^ 28))), // 1 MB table
            (
                1.0,
                Box::new(Hotspot::new(STACKISH, 8, 256, 0.7, seed ^ 29)),
            ),
            (2.0, code(seed, 40, 1536)), // 60 KB text
        ],
        seed ^ 30,
    ))
}

/// 462.libquantum: quantum simulation: one pure stream.
fn b462(seed: u64) -> Workload {
    let _ = seed;
    Box::new(Mix::new(
        vec![
            (19.0, Box::new(Stream::new(ARR1, 32 * MB, 8))),
            (1.0, code(seed, 2, 256)),
        ],
        seed ^ 31,
    ))
}

/// 464.h264ref: video encoder: frame nests + motion-search locality.
fn b464(seed: u64) -> Workload {
    Box::new(Mix::new(
        vec![
            (
                5.0,
                Box::new(LoopNest::new(ARR1, 1088, 1920, 1, 2 * KB, 16)),
            ),
            (1.0, Box::new(Hotspot::new(ARR3, 8, 512, 0.7, seed ^ 32))),
            (1.0, code(seed, 24, 1024)),
        ],
        seed ^ 33,
    ))
}

/// 470.lbm: lattice Boltzmann: time steps sweep shifted lattice copies.
///
/// The phase structure (identical sweeps over four disjoint regions) is the
/// byte-translation showcase used by the paper's Figure 4.
fn b470(seed: u64) -> Workload {
    let mut phases = Vec::new();
    for i in 0u64..4 {
        let base = ARR1 + i * 0x0004_0000_0000;
        phases.push(Phase::new(
            Box::new(Stream::new(base, 24 * MB, 8)) as Workload,
            3_000_000,
        ));
    }
    let data: Workload = Box::new(Phased::new(phases));
    Box::new(Mix::new(
        vec![(19.0, data), (1.0, code(seed, 2, 256))],
        seed ^ 34,
    ))
}

/// 471.omnetpp: discrete event simulation: heap churn + event lists.
fn b471(seed: u64) -> Workload {
    Box::new(Mix::new(
        vec![
            (3.0, Box::new(PointerChase::new(HEAP, 64 * KB, seed ^ 35))),
            (2.0, Box::new(Hotspot::new(ARR1, 10, 512, 0.75, seed ^ 36))),
            (1.0, Box::new(Stream::new(ARR2, 2 * MB, 8))),
            (1.0, code(seed, 32, 1024)),
        ],
        seed ^ 37,
    ))
}

/// 473.astar: path finding: pointer chasing over the graph + open list.
fn b473(seed: u64) -> Workload {
    Box::new(Mix::new(
        vec![
            (4.0, Box::new(PointerChase::new(ARR1, 48 * KB, seed ^ 38))), // 3 MB graph
            (2.0, Box::new(RandomAccess::new(HEAP, 4 * KB, seed ^ 39))),
            (1.0, code(seed, 8, 768)),
        ],
        seed ^ 40,
    ))
}

/// 482.sphinx3: speech recognition: acoustic-model streaming + lexicon.
fn b482(seed: u64) -> Workload {
    Box::new(Mix::new(
        vec![
            (7.0, Box::new(Stream::new(ARR1, 16 * MB, 8))),
            (2.0, Box::new(Hotspot::new(ARR2, 8, KB, 0.7, seed ^ 41))),
            (1.0, code(seed, 12, 1024)),
        ],
        seed ^ 42,
    ))
}

/// 483.xalancbmk: XSLT: DOM pointer chasing + very large code.
fn b483(seed: u64) -> Workload {
    Box::new(Mix::new(
        vec![
            (3.0, Box::new(PointerChase::new(HEAP, 32 * KB, seed ^ 43))),
            (1.0, Box::new(Hotspot::new(ARR1, 8, 512, 0.7, seed ^ 44))),
            (3.0, code(seed, 96, 2048)), // 192 KB text
        ],
        seed ^ 45,
    ))
}

/// All 22 profiles, in the paper's Table 1 order.
pub fn profiles() -> &'static [Profile] {
    const PROFILES: &[Profile] = &[
        Profile {
            name: "400.perlbench",
            class: Class::Mixed,
            builder: b400,
        },
        Profile {
            name: "401.bzip2",
            class: Class::Irregular,
            builder: b401,
        },
        Profile {
            name: "403.gcc",
            class: Class::Unstable,
            builder: b403,
        },
        Profile {
            name: "410.bwaves",
            class: Class::Streaming,
            builder: b410,
        },
        Profile {
            name: "429.mcf",
            class: Class::Irregular,
            builder: b429,
        },
        Profile {
            name: "433.milc",
            class: Class::Streaming,
            builder: b433,
        },
        Profile {
            name: "434.zeusmp",
            class: Class::Mixed,
            builder: b434,
        },
        Profile {
            name: "435.gromacs",
            class: Class::Irregular,
            builder: b435,
        },
        Profile {
            name: "444.namd",
            class: Class::Mixed,
            builder: b444,
        },
        Profile {
            name: "445.gobmk",
            class: Class::Irregular,
            builder: b445,
        },
        Profile {
            name: "447.dealII",
            class: Class::Unstable,
            builder: b447,
        },
        Profile {
            name: "450.soplex",
            class: Class::Mixed,
            builder: b450,
        },
        Profile {
            name: "453.povray",
            class: Class::Streaming,
            builder: b453,
        },
        Profile {
            name: "456.hmmer",
            class: Class::Mixed,
            builder: b456,
        },
        Profile {
            name: "458.sjeng",
            class: Class::Irregular,
            builder: b458,
        },
        Profile {
            name: "462.libquantum",
            class: Class::Streaming,
            builder: b462,
        },
        Profile {
            name: "464.h264ref",
            class: Class::Mixed,
            builder: b464,
        },
        Profile {
            name: "470.lbm",
            class: Class::Streaming,
            builder: b470,
        },
        Profile {
            name: "471.omnetpp",
            class: Class::Mixed,
            builder: b471,
        },
        Profile {
            name: "473.astar",
            class: Class::Irregular,
            builder: b473,
        },
        Profile {
            name: "482.sphinx3",
            class: Class::Mixed,
            builder: b482,
        },
        Profile {
            name: "483.xalancbmk",
            class: Class::Mixed,
            builder: b483,
        },
    ];
    PROFILES
}

/// Looks up a profile by full name (`"429.mcf"`) or number (`"429"`).
pub fn profile(name: &str) -> Option<&'static Profile> {
    profiles()
        .iter()
        .find(|p| p.name == name || p.number() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_two_profiles() {
        assert_eq!(profiles().len(), 22);
    }

    #[test]
    fn lookup_by_name_and_number() {
        assert_eq!(profile("429.mcf").unwrap().name(), "429.mcf");
        assert_eq!(profile("429").unwrap().name(), "429.mcf");
        assert!(profile("999.nope").is_none());
    }

    #[test]
    fn all_profiles_generate() {
        for p in profiles() {
            let n = p.workload(7).take(10_000).count();
            assert_eq!(n, 10_000, "{} must be infinite", p.name());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        for p in profiles() {
            let a: Vec<u64> = p.workload(3).take(2000).map(|x| x.addr).collect();
            let b: Vec<u64> = p.workload(3).take(2000).map(|x| x.addr).collect();
            assert_eq!(a, b, "{} must be deterministic", p.name());
        }
    }

    #[test]
    fn addresses_below_2_pow_58() {
        for p in profiles() {
            for a in p.workload(1).take(5000) {
                assert!(a.addr < 1 << 58, "{}: {:#x}", p.name(), a.addr);
            }
        }
    }

    #[test]
    fn classes_cover_all_variants() {
        use std::collections::HashSet;
        let classes: HashSet<_> = profiles()
            .iter()
            .map(|p| format!("{:?}", p.class()))
            .collect();
        assert_eq!(classes.len(), 4);
    }
}
