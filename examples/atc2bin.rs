//! `atc2bin` — the paper's Figure 7 program: decompress an ATC trace
//! directory to raw 64-bit values on stdout.
//!
//! ```text
//! cargo run --release --example atc2bin -- foobar | wc -c
//! ```

use std::error::Error;
use std::io::Write;

use atc::core::AtcReader;

fn main() -> Result<(), Box<dyn Error>> {
    let dir = std::env::args()
        .nth(1)
        .ok_or("usage: atc2bin <dir>")?;
    let mut r = AtcReader::open(&dir)?;
    let mut stdout = std::io::BufWriter::new(std::io::stdout().lock());
    // The Figure 7 loop: atc_decode until it reports end of trace.
    while let Some(v) = r.decode()? {
        stdout.write_all(&v.to_le_bytes())?;
    }
    stdout.flush()?;
    Ok(())
}
