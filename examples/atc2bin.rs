//! `atc2bin` — the paper's Figure 7 program: decompress an ATC trace
//! directory to raw 64-bit values on stdout.
//!
//! ```text
//! cargo run --release --example atc2bin -- foobar | wc -c
//! cargo run --release --example atc2bin -- foobar --threads 4 | wc -c
//! ```

use std::error::Error;
use std::io::Write;

use atc::core::{AtcReader, ReadOptions};

#[path = "cli_util/mod.rs"]
mod cli_util;
use cli_util::positional;

fn main() -> Result<(), Box<dyn Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dir = positional(&args, &["--threads"]).ok_or("usage: atc2bin <dir> [--threads N]")?;
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let mut r = AtcReader::open_with(
        dir,
        ReadOptions {
            threads,
            ..ReadOptions::default()
        },
    )?;
    let mut stdout = std::io::BufWriter::new(std::io::stdout().lock());
    // The Figure 7 loop: atc_decode until it reports end of trace.
    while let Some(v) = r.decode()? {
        stdout.write_all(&v.to_le_bytes())?;
    }
    stdout.flush()?;
    Ok(())
}
