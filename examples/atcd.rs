//! `atcd` — the trace-service daemon: serve one packed store root to
//! many clients over TCP (protocol in `atc::core::format`, `ATCNET1`).
//!
//! ```text
//! # serve a packed store on the default port:
//! atcd serve store.atc --addr 127.0.0.1:9409 --workers 8
//!
//! # fetch ranges from another machine (or a fleet of simulators):
//! atcstore fetch --addr host:9409 --range 1000000..1001000 > window.bin
//! ```
//!
//! SIGTERM/SIGINT shut the daemon down cleanly: the accept loop stops,
//! in-flight connections finish their current request, and the final
//! counters print to stderr before exit 0.

use std::error::Error;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use atc::cache::SegmentCache;
use atc::net::{NetServer, ServeOptions};

#[path = "cli_util/mod.rs"]
mod cli_util;
use cli_util::positional;

const USAGE: &str = "usage: atcd serve <root> [--addr HOST:PORT] [--workers N] \
    [--window BYTES] [--timeout-ms N]";

/// Set by the signal handler; polled by the main thread.
static STOP: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    // The example avoids external crates, so the handler goes through
    // libc's `signal` directly: the handler only stores to an atomic,
    // which is async-signal-safe.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_signal(_signum: i32) {
        STOP.store(true, Ordering::Release);
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as extern "C" fn(i32) as *const () as usize;
    // SAFETY: `signal` installs an `extern "C" fn(i32)` handler, which
    // matches libc's expected prototype; the handler itself only touches
    // a static AtomicBool, which is async-signal-safe.
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn main() -> Result<(), Box<dyn Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let value_flags = ["--addr", "--workers", "--window", "--timeout-ms"];
    let command = positional(&args, &value_flags).ok_or(USAGE)?.clone();
    if command != "serve" {
        return Err(USAGE.into());
    }
    let rest: Vec<String> = args
        .iter()
        .skip_while(|a| **a != command)
        .skip(1)
        .cloned()
        .collect();
    let root = positional(&rest, &value_flags).ok_or(USAGE)?.clone();
    let get = |key: &str| -> Option<&String> {
        args.iter()
            .position(|a| a == key)
            .and_then(|i| args.get(i + 1))
    };
    let addr = get("--addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:9409".into());
    let mut options = ServeOptions::default();
    if let Some(v) = get("--workers") {
        options.workers = v.parse().map_err(|_| "--workers takes a count")?;
    }
    if let Some(v) = get("--window") {
        options.window_bytes = v.parse().map_err(|_| "--window takes bytes")?;
    }
    if let Some(v) = get("--timeout-ms") {
        options.io_timeout =
            Duration::from_millis(v.parse().map_err(|_| "--timeout-ms takes milliseconds")?);
    }
    options.segment_cache = Some(SegmentCache::global());

    install_signal_handlers();
    let server = NetServer::bind(&root, addr.as_str(), options)?;
    let local = server.local_addr()?;
    let handle = server.handle();
    eprintln!("atcd: serving {root} on {local}");
    let join = std::thread::spawn(move || server.run());

    // The daemon's main thread just watches for signals (and for the
    // server dying on its own, e.g. a listener error).
    while !STOP.load(Ordering::Acquire) && !join.is_finished() {
        std::thread::sleep(Duration::from_millis(50));
    }
    handle.shutdown();
    let stats = join.join().map_err(|_| "server thread panicked")??;
    eprintln!(
        "atcd: stopped; {} connections, {} requests, {} protocol errors, {} dropped",
        stats.connections, stats.requests, stats.proto_errors, stats.dropped
    );
    eprintln!(
        "atcd: segment cache {} hits, {} misses, {} evictions",
        stats.cache.hits, stats.cache.misses, stats.cache.evictions
    );
    Ok(())
}
