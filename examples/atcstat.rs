//! `atcstat` — inspect and verify an ATC trace directory.
//!
//! Prints the header, walks the whole container (every checksum, every
//! chunk reference), and reports size breakdown and compression ratio.
//!
//! ```text
//! cargo run --release --example atcstat -- foobar
//! ```

use std::error::Error;

use atc::core::verify;

fn main() -> Result<(), Box<dyn Error>> {
    let dir = std::env::args().nth(1).ok_or("usage: atcstat <dir>")?;
    let dir = std::path::PathBuf::from(dir);

    let meta_text = std::fs::read_to_string(dir.join("meta"))?;
    println!("header:");
    for line in meta_text.lines() {
        println!("  {line}");
    }

    let report = verify(&dir)?;
    println!("\nverification: OK");
    println!("  mode:       {}", report.mode);
    println!("  addresses:  {}", report.addresses);
    if report.mode == "lossy" {
        println!("  intervals:  {}", report.intervals);
        println!("  chunks:     {}", report.chunks);
        if !report.orphan_chunks.is_empty() {
            println!("  orphans:    {:?}", report.orphan_chunks);
        }
    }

    let mut total = 0u64;
    let mut files: Vec<(String, u64)> = Vec::new();
    for entry in std::fs::read_dir(&dir)? {
        let entry = entry?;
        if entry.file_type()?.is_file() {
            let len = entry.metadata()?.len();
            total += len;
            files.push((entry.file_name().to_string_lossy().into_owned(), len));
        }
    }
    files.sort();
    println!("\nfiles:");
    for (name, len) in &files {
        println!("  {len:>12} {name}");
    }
    println!("  {total:>12} total");
    if report.addresses > 0 {
        println!(
            "\n{:.3} bits per address ({:.1}x vs raw 64-bit values)",
            total as f64 * 8.0 / report.addresses as f64,
            report.addresses as f64 * 8.0 / total as f64
        );
    }
    Ok(())
}
