//! `atcstat` — inspect and verify an ATC trace directory.
//!
//! Prints the header, walks the whole container (every checksum, every
//! chunk reference), and reports size breakdown and compression ratio.
//! With `--threads N` (N > 1) it additionally drains the trace through
//! the parallel read pipeline on a private execution engine and reports
//! the engine/worker counters (`tasks run`, `steals`, `scratch reuse`)
//! alongside the reader's `frame_stats()`.
//!
//! With `--seek FRAME` it becomes a random-access extractor instead:
//! seek to that frame through the seek sidecar (decoding at most one
//! segment before the target; linear fallback with a warning on traces
//! without a sidecar), then dump the remaining addresses as raw
//! little-endian 64-bit values on stdout. Segment-cache and decode
//! counters go to stderr.
//!
//! ```text
//! cargo run --release --example atcstat -- foobar
//! cargo run --release --example atcstat -- foobar --threads 4
//! cargo run --release --example atcstat -- foobar --seek 42 > tail.bin
//! ```

use std::error::Error;
use std::io::Write;

use atc::cache::SegmentCache;
use atc::core::{verify, AtcReader, ReadOptions};
use atc::engine::Engine;

#[path = "cli_util/mod.rs"]
mod cli_util;
use cli_util::positional;

fn main() -> Result<(), Box<dyn Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dir = positional(&args, &["--threads", "--seek"])
        .cloned()
        .ok_or("usage: atcstat <dir> [--threads N] [--seek FRAME]")?;
    let threads: usize = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let dir = std::path::PathBuf::from(dir);

    if let Some(i) = args.iter().position(|a| a == "--seek") {
        let frame: u64 = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .ok_or("--seek takes a frame number")?;
        let cache = SegmentCache::global();
        let mut r = AtcReader::open_with(
            &dir,
            ReadOptions {
                threads,
                segment_cache: Some(cache.clone()),
                ..ReadOptions::default()
            },
        )?;
        r.seek(frame)?;
        let mut stdout = std::io::BufWriter::new(std::io::stdout().lock());
        while let Some(frame) = r.next_frame()? {
            for v in frame {
                stdout.write_all(&v.to_le_bytes())?;
            }
        }
        stdout.flush()?;
        if let Some(decoded) = r.segments_decoded() {
            eprintln!("seek: frame {frame}, {decoded} segments decoded");
        }
        let s = cache.stats();
        eprintln!(
            "segment cache: {} hits, {} misses, {} evictions, {}/{} bytes",
            s.hits, s.misses, s.evictions, s.bytes, s.cap
        );
        return Ok(());
    }

    let meta_text = std::fs::read_to_string(dir.join("meta"))?;
    println!("header:");
    for line in meta_text.lines() {
        println!("  {line}");
    }

    let report = verify(&dir)?;
    println!("\nverification: OK");
    println!("  mode:       {}", report.mode);
    println!("  addresses:  {}", report.addresses);
    if report.mode == "lossy" {
        println!("  intervals:  {}", report.intervals);
        println!("  chunks:     {}", report.chunks);
        if !report.orphan_chunks.is_empty() {
            println!("  orphans:    {:?}", report.orphan_chunks);
        }
    }

    let mut total = 0u64;
    let mut files: Vec<(String, u64)> = Vec::new();
    for entry in std::fs::read_dir(&dir)? {
        let entry = entry?;
        if entry.file_type()?.is_file() {
            let len = entry.metadata()?.len();
            total += len;
            files.push((entry.file_name().to_string_lossy().into_owned(), len));
        }
    }
    files.sort();
    println!("\nfiles:");
    for (name, len) in &files {
        println!("  {len:>12} {name}");
    }
    println!("  {total:>12} total");
    if report.addresses > 0 {
        println!(
            "\n{:.3} bits per address ({:.1}x vs raw 64-bit values)",
            total as f64 * 8.0 / report.addresses as f64,
            report.addresses as f64 * 8.0 / total as f64
        );
    }

    if threads > 1 {
        // Drain the trace again through the parallel pipeline on a
        // private engine, so the counters below describe exactly this
        // trace (the process-wide engine would mix in other streams).
        let engine = Engine::new(threads);
        let start = std::time::Instant::now();
        let mut r = AtcReader::open_with(
            &dir,
            ReadOptions {
                threads,
                engine: Some(engine.clone()),
                ..ReadOptions::default()
            },
        )?;
        let mut frames = 0u64;
        while let Some(frame) = r.next_frame()? {
            let _ = frame;
            frames += 1;
        }
        let elapsed = start.elapsed();
        let fs = r.frame_stats();
        let es = engine.stats();
        println!(
            "\nthreaded drain ({threads} requested, {} engine workers, {elapsed:.2?}):",
            engine.workers()
        );
        println!("  frames:          {frames}");
        println!("  borrowed bytes:  {}", fs.borrowed_bytes);
        println!("  copied bytes:    {}", fs.copied_bytes);
        println!("engine:");
        println!("  tasks run:       {}", es.tasks_run);
        println!("  steals:          {}", es.steals);
        println!(
            "  scratch reuse:   {} reused / {} fresh",
            es.scratch_reused, es.scratch_fresh
        );
    }
    Ok(())
}
