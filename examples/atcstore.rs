//! `atcstore` — the sharded-store CLI: the multi-trace analogue of
//! `bin2atc`/`atc2bin`.
//!
//! ```text
//! # shard 64-bit values from stdin across 4 round-robin shards, 4 threads:
//! atcstore pack store.atc --shards 4 --threads 4 --lossless < trace.bin
//!
//! # keep address regions shard-local instead:
//! atcstore pack store.atc --shards 4 --policy addr-range:22 --lossless < trace.bin
//!
//! # merged read-back (exact arrival order under every policy — the
//! # manifest's interleave track drives the merge; only track-less old
//! # manifests fall back to shard concatenation):
//! atcstore unpack store.atc --threads 4 > out.bin
//!
//! # one shard only:
//! atcstore unpack store.atc --shard 2 > shard2.bin
//!
//! # random access: global addresses A..B of the merged stream, without
//! # decoding the stream in front of them (per-shard seek sidecars +
//! # mid-run interleave replay; falls back to linear skip with a
//! # warning on legacy shards without sidecars):
//! atcstore read store.atc --range 1000000..1001000 > window.bin
//!
//! # manifest + per-shard summary (add --threads N for a verification
//! # drain with engine/worker counters):
//! atcstore stat store.atc --threads 4
//!
//! # the same random-access window, but served by a remote `atcd`
//! # daemon instead of a local directory (see `examples/atcd.rs`):
//! atcstore fetch --addr 127.0.0.1:9409 --range 1000000..1001000 > window.bin
//!
//! # one shard's sub-stream from value offset 5000 onward, remotely:
//! atcstore fetch --addr 127.0.0.1:9409 --shard 2 --from 5000 > tail.bin
//! ```
//!
//! `pack` and `unpack` with `--threads N` run their work on a private
//! N-worker execution engine and report its counters (`tasks run`,
//! `steals`, `scratch reuse`) to stderr.

use std::error::Error;
use std::io::{Read, Write};

use atc::cache::SegmentCache;
use atc::core::format::shard_dir_name;
use atc::core::{AtcOptions, AtcReader, LossyConfig, Mode, ReadOptions};
use atc::engine::{Engine, EngineStats};
use atc::net::AtcClient;
use atc::store::{AtcStore, ShardPolicy, StoreOptions, StoreReader};

#[path = "cli_util/mod.rs"]
mod cli_util;
use cli_util::positional;
#[path = "cli_util/filter.rs"]
mod cli_filter;
use cli_filter::FilterOptions;

const USAGE: &str = "usage: atcstore <pack|unpack|read|stat> <root> \
    [--shards N] [--policy round-robin|addr-range:SHIFT] \
    [--lossless] [--interval N] [--buffer N] [--codec NAME] [--threads N] [--shard I] \
    [--filter] [--filter-threads N] [--filter-writebacks] \
    [--range A..B] \
    | atcstore fetch --addr HOST:PORT (--range A..B | --shard I [--from N])";

fn main() -> Result<(), Box<dyn Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut value_flags = vec![
        "--shards",
        "--policy",
        "--interval",
        "--buffer",
        "--codec",
        "--threads",
        "--shard",
        "--range",
        "--addr",
        "--from",
    ];
    value_flags.extend_from_slice(FilterOptions::VALUE_FLAGS);
    let command = positional(&args, &value_flags).ok_or(USAGE)?.clone();
    if command == "fetch" {
        // Remote verb: talks to an `atcd` daemon, takes no store root.
        return fetch(&args);
    }
    let rest: Vec<String> = args
        .iter()
        .skip_while(|a| **a != command)
        .skip(1)
        .cloned()
        .collect();
    let root = positional(&rest, &value_flags).ok_or(USAGE)?.clone();

    let get = |key: &str, default: usize| -> usize {
        args.iter()
            .position(|a| a == key)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let get_str = |key: &str, default: &str| -> String {
        args.iter()
            .position(|a| a == key)
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| default.into())
    };
    let threads = get("--threads", 1);
    // One private engine per invocation so the counters printed below
    // describe exactly this command's work.
    let engine = (threads > 1).then(|| Engine::new(threads));
    let print_engine_stats = |stats: EngineStats| {
        eprintln!(
            "engine: {} tasks run, {} steals, scratch {} reused / {} fresh",
            stats.tasks_run, stats.steals, stats.scratch_reused, stats.scratch_fresh
        );
    };
    let read_options = || ReadOptions {
        threads,
        engine: engine.clone(),
        // The process-wide decoded-segment cache: shards carrying a seek
        // sidecar decode each hot segment at most once per process.
        segment_cache: Some(SegmentCache::global()),
        ..ReadOptions::default()
    };
    let print_cache_stats = || {
        let s = SegmentCache::global().stats();
        eprintln!(
            "segment cache: {} hits, {} misses, {} evictions, {}/{} bytes",
            s.hits, s.misses, s.evictions, s.bytes, s.cap
        );
    };

    match command.as_str() {
        "pack" => {
            let policy = ShardPolicy::parse(&get_str("--policy", "round-robin"))
                .ok_or("unknown --policy (round-robin | addr-range:SHIFT | thread-id)")?;
            if policy == ShardPolicy::ThreadId {
                // The stdin format is bare 8-byte addresses: there is no
                // stream key to route by, so every value would land in
                // shard 0 while the other writers sit idle.
                return Err(
                    "--policy thread-id needs keyed records, which the raw stdin \
                     format does not carry; use round-robin or addr-range:SHIFT here \
                     (thread-id routing is available through AtcStore::code_from)"
                        .into(),
                );
            }
            let mode = if args.iter().any(|a| a == "--lossless") {
                Mode::Lossless
            } else {
                Mode::Lossy(LossyConfig {
                    interval_len: get("--interval", 10_000_000),
                    ..LossyConfig::default()
                })
            };
            let store_options = StoreOptions {
                shards: get("--shards", 4),
                policy,
                atc: AtcOptions {
                    codec: get_str("--codec", "bzip"),
                    buffer: get("--buffer", 1_000_000),
                    threads,
                },
                max_buffered_bytes: None,
            };
            let mut store = match &engine {
                Some(e) => AtcStore::create_with_engine(&root, mode, store_options, e.clone())?,
                None => AtcStore::create(&root, mode, store_options)?,
            };
            let filter = FilterOptions::parse(&args);
            if filter.enabled {
                // Filtered ingest: only L1-missing block addresses (and
                // tagged write-backs, if enabled) reach the shards.
                cli_filter::run(&filter, |values| {
                    store.code_all(values.iter().copied()).map_err(Into::into)
                })?;
            } else {
                let mut stdin = std::io::stdin().lock();
                let mut buf = [0u8; 8];
                loop {
                    match stdin.read_exact(&mut buf) {
                        Ok(()) => store.code(u64::from_le_bytes(buf))?,
                        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
                        Err(e) => return Err(e.into()),
                    }
                }
            }
            let stats = store.finish()?;
            eprintln!(
                "{} addresses -> {} bytes over {} shards ({:.3} bits/address)",
                stats.count,
                stats.compressed_bytes,
                stats.shards.len(),
                stats.bits_per_address()
            );
            if let Some(peak) = stats.peak_buffered_bytes {
                eprintln!("buffered-memory gate: peak {peak} bytes");
            }
            if let Some(engine_stats) = stats.engine {
                print_engine_stats(engine_stats);
            }
        }
        "unpack" => {
            let options = read_options();
            let mut stdout = std::io::BufWriter::new(std::io::stdout().lock());
            if let Some(i) = args.iter().position(|a| a == "--shard") {
                let shard: usize = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--shard takes an index")?;
                // A shard is an ordinary trace directory: open it alone
                // (with the full thread budget) instead of spinning up a
                // reader per shard just to drain one.
                let mut r = AtcReader::open_with(
                    std::path::Path::new(&root).join(shard_dir_name(shard)),
                    options,
                )?;
                while let Some(frame) = r.next_frame()? {
                    for v in frame {
                        stdout.write_all(&v.to_le_bytes())?;
                    }
                }
            } else {
                let mut r = StoreReader::open_with(&root, options)?;
                while let Some(v) = r.decode()? {
                    stdout.write_all(&v.to_le_bytes())?;
                }
            }
            stdout.flush()?;
            if let Some(engine) = &engine {
                print_engine_stats(engine.stats());
            }
        }
        "read" => {
            let range_arg = args
                .iter()
                .position(|a| a == "--range")
                .and_then(|i| args.get(i + 1))
                .ok_or("read needs --range A..B (global merged positions)")?;
            let (a, b) = range_arg
                .split_once("..")
                .ok_or("--range takes A..B, e.g. --range 1000..2000")?;
            let start: u64 = a.parse().map_err(|_| "--range start is not a number")?;
            let end: u64 = b.parse().map_err(|_| "--range end is not a number")?;
            let mut r = StoreReader::open_with(&root, read_options())?;
            let window = r.read_range(start..end)?;
            let mut stdout = std::io::BufWriter::new(std::io::stdout().lock());
            for v in &window {
                stdout.write_all(&v.to_le_bytes())?;
            }
            stdout.flush()?;
            eprintln!("read {} addresses from {start}..{end}", window.len());
            print_cache_stats();
            if let Some(engine) = &engine {
                print_engine_stats(engine.stats());
            }
        }
        "stat" => {
            let mut r = StoreReader::open(&root)?;
            let m = r.manifest().clone();
            println!(
                "policy={} shards={} count={} version={}",
                m.policy,
                m.shards(),
                m.count,
                m.version
            );
            // The merge-mode line: where the merged read-back's order
            // comes from, and — for recorded tracks — what the track
            // costs on disk.
            match &m.interleave {
                Some(track) => println!(
                    "merge=exact (interleave track: {} runs, {} encoded bytes)",
                    track.runs().len(),
                    track.encoded_len()
                ),
                None if r.merge_is_exact() => {
                    println!("merge=exact (round-robin rotation, no track needed)")
                }
                None => {
                    println!("merge=concatenation (shard order)");
                    eprintln!(
                        "warning: no interleave track in the manifest (packed by an \
                         older writer); the merged read-back concatenates shards \
                         instead of replaying the original arrival order"
                    );
                }
            }
            for (i, count) in m.shard_counts.iter().enumerate() {
                let meta = r.shard(i).meta().clone();
                println!(
                    "  shard {i}: {count} addresses, mode={}, codec={}, chunks={}",
                    meta.mode, meta.codec, meta.chunks
                );
            }
            if let Some(engine) = &engine {
                // Verification drain through the shared engine: proves
                // every shard decodes and reports the worker counters.
                drop(r);
                let mut r = StoreReader::open_with(&root, read_options())?;
                let start = std::time::Instant::now();
                let mut n = 0u64;
                while r.decode()?.is_some() {
                    n += 1;
                }
                println!(
                    "drained {n} addresses through {} engine workers in {:.2?}",
                    engine.workers(),
                    start.elapsed()
                );
                print_engine_stats(engine.stats());
                print_cache_stats();
            }
        }
        _ => return Err(USAGE.into()),
    }
    Ok(())
}

/// `atcstore fetch`: the `read`/`unpack --shard` verbs, served by a
/// remote `atcd` instead of a local directory. Output is the same LE
/// 64-bit stream, so local and remote reads `cmp` byte-identical.
fn fetch(args: &[String]) -> Result<(), Box<dyn Error>> {
    let get_val = |key: &str| -> Option<&String> {
        args.iter()
            .position(|a| a == key)
            .and_then(|i| args.get(i + 1))
    };
    let addr = get_val("--addr").ok_or("fetch needs --addr HOST:PORT")?;
    let mut client = AtcClient::connect(addr.as_str())?;
    let values = if let Some(range_arg) = get_val("--range") {
        let (a, b) = range_arg
            .split_once("..")
            .ok_or("--range takes A..B, e.g. --range 1000..2000")?;
        let start: u64 = a.parse().map_err(|_| "--range start is not a number")?;
        let end: u64 = b.parse().map_err(|_| "--range end is not a number")?;
        let values = client.read_range(start..end)?;
        eprintln!(
            "fetched {} addresses from {start}..{end} at {addr}",
            values.len()
        );
        values
    } else if let Some(shard_arg) = get_val("--shard") {
        let shard: u32 = shard_arg.parse().map_err(|_| "--shard takes an index")?;
        let from: u64 = match get_val("--from") {
            Some(v) => v.parse().map_err(|_| "--from takes a value offset")?,
            None => 0,
        };
        let values = client.stream_shard(shard, from)?;
        eprintln!(
            "fetched {} addresses of shard {shard} from offset {from} at {addr}",
            values.len()
        );
        values
    } else {
        return Err("fetch needs --range A..B or --shard I [--from N]".into());
    };
    let mut stdout = std::io::BufWriter::new(std::io::stdout().lock());
    for v in &values {
        stdout.write_all(&v.to_le_bytes())?;
    }
    stdout.flush()?;
    let stat = client.stat()?;
    eprintln!(
        "server: {} addresses over {} shards ({}), cache {} hits / {} misses",
        stat.count,
        stat.shard_counts.len(),
        stat.policy,
        stat.cache_hits,
        stat.cache_misses
    );
    Ok(())
}
