//! `bin2atc` — the paper's Figure 6 program: read 64-bit values from stdin,
//! write an ATC-compressed trace directory.
//!
//! ```text
//! # lossy (the paper's 'k' mode, default) — Figure 8's demonstration:
//! head -c 8000000 /dev/urandom | cargo run --release --example bin2atc -- foobar
//!
//! # lossless ('c' mode):
//! cat trace.bin | cargo run --release --example bin2atc -- foobar --lossless
//!
//! # L1-filter the raw addresses first (the paper's trace collection,
//! # §4.2) with 4 set-partitioned filter workers:
//! cat accesses.bin | cargo run --release --example bin2atc -- foobar \
//!     --lossless --filter --filter-threads 4
//! ```

use std::error::Error;
use std::io::Read;

use atc::core::{AtcOptions, AtcWriter, LossyConfig, Mode};

#[path = "cli_util/mod.rs"]
mod cli_util;
use cli_util::positional;
#[path = "cli_util/filter.rs"]
mod cli_filter;
use cli_filter::FilterOptions;

fn main() -> Result<(), Box<dyn Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut value_flags = vec!["--interval", "--buffer", "--codec", "--threads"];
    value_flags.extend_from_slice(FilterOptions::VALUE_FLAGS);
    let dir = positional(&args, &value_flags).ok_or(
        "usage: bin2atc <dir> [--lossless] [--interval N] [--buffer N] [--codec NAME] \
             [--threads N] [--filter] [--filter-threads N] [--filter-writebacks]",
    )?;
    let lossless = args.iter().any(|a| a == "--lossless");
    let get = |key: &str, default: usize| -> usize {
        args.iter()
            .position(|a| a == key)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let interval = get("--interval", 10_000_000); // the paper's L
    let buffer = get("--buffer", 1_000_000); // the paper's chunk B
    let threads = get("--threads", 1); // compression worker pool
    let codec = args
        .iter()
        .position(|a| a == "--codec")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "bzip".into());

    let mode = if lossless {
        Mode::Lossless
    } else {
        Mode::Lossy(LossyConfig {
            interval_len: interval,
            ..LossyConfig::default()
        })
    };
    let mut w = AtcWriter::with_options(
        dir,
        mode,
        AtcOptions {
            codec,
            buffer,
            threads,
        },
    )?;

    let filter = FilterOptions::parse(&args);
    if filter.enabled {
        // Filtered ingest: stdin values are raw byte addresses; only the
        // L1-missing block addresses reach the compressor, in blocks.
        cli_filter::run(&filter, |values| {
            w.code_all(values.iter().copied()).map_err(Into::into)
        })?;
    } else {
        // The Figure 6 loop: fread 8 bytes at a time, atc_code each value.
        let mut stdin = std::io::stdin().lock();
        let mut buf = [0u8; 8];
        loop {
            match stdin.read_exact(&mut buf) {
                Ok(()) => w.code(u64::from_le_bytes(buf))?,
                Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
                Err(e) => return Err(e.into()),
            }
        }
    }
    let stats = w.finish()?;
    eprintln!(
        "{} addresses -> {} bytes ({:.3} bits/address, {} chunks)",
        stats.count,
        stats.compressed_bytes,
        stats.bits_per_address(),
        stats.chunks
    );
    Ok(())
}
