//! Cache-fidelity study: does a lossy-compressed trace predict the same
//! cache behaviour as the exact trace?
//!
//! A miniature of the paper's Figure 3: simulate LRU caches of several
//! geometries on both traces and compare miss-ratio curves side by side.
//!
//! ```text
//! cargo run --release --example cache_fidelity -- [profile] [len]
//! ```

use std::error::Error;

use atc::cache::{CacheFilter, StackSim};
use atc::core::{AtcOptions, AtcReader, AtcWriter, LossyConfig, Mode};
use atc::trace::spec;

fn main() -> Result<(), Box<dyn Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let profile_name = args.first().map(String::as_str).unwrap_or("458.sjeng");
    let len: usize = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(400_000);

    let profile = spec::profile(profile_name).ok_or("unknown profile")?;
    println!(
        "profile: {} ({:?}), {len} filtered addresses",
        profile.name(),
        profile.class()
    );

    let mut filter = CacheFilter::paper();
    let exact: Vec<u64> = filter.filter(profile.workload(7)).take(len).collect();

    // Lossy roundtrip with the paper's ratios: L = len/100, B = L/10.
    let scratch = std::env::temp_dir().join("atc-cache-fidelity");
    let _ = std::fs::remove_dir_all(&scratch);
    let interval = (len / 100).max(1);
    let mut w = AtcWriter::with_options(
        &scratch,
        Mode::Lossy(LossyConfig {
            interval_len: interval,
            ..LossyConfig::default()
        }),
        AtcOptions {
            codec: "bzip".into(),
            buffer: (interval / 10).max(1),
            threads: 1,
        },
    )?;
    w.code_all(exact.iter().copied())?;
    let stats = w.finish()?;
    println!(
        "lossy: {:.3} bits/address, {} chunks / {} intervals\n",
        stats.bits_per_address(),
        stats.chunks,
        stats.intervals
    );
    let approx = AtcReader::open(&scratch)?.decode_all()?;

    println!(
        "{:>6} {:>6} | {:>10} {:>10} {:>8}",
        "sets", "ways", "exact", "approx", "delta"
    );
    let mut worst = 0.0f64;
    for sets in [256usize, 1024, 4096] {
        let mut sim_e = StackSim::new(sets, 16);
        sim_e.run(exact.iter().copied());
        let mut sim_a = StackSim::new(sets, 16);
        sim_a.run(approx.iter().copied());
        for ways in [1usize, 2, 4, 8, 16] {
            let e = sim_e.miss_ratio(ways);
            let a = sim_a.miss_ratio(ways);
            worst = worst.max((e - a).abs());
            println!(
                "{sets:>6} {ways:>6} | {e:>10.4} {a:>10.4} {:>8.4}",
                (e - a).abs()
            );
        }
    }
    println!("\nlargest miss-ratio deviation: {worst:.4}");
    std::fs::remove_dir_all(&scratch)?;
    Ok(())
}
