//! Shared L1 cache-filter front end for the ingest CLIs (`bin2atc`,
//! `atcstore pack`), included via `#[path]`.
//!
//! With `--filter`, stdin's raw 64-bit byte addresses are run through
//! the paper's 32 KB 4-way L1 geometry (§4.2) before compression, so
//! the written trace contains only the cache-filtered block addresses —
//! the exact streams ATC was designed for. `--filter-threads N` swaps
//! in the set-partitioned parallel filter on a private N-worker engine;
//! its output is byte-identical to the serial filter at every worker
//! count, so downstream directories `cmp` equal regardless of N.

use std::error::Error;
use std::io::Read;

use atc::cache::{CacheFilter, ParallelCacheFilter};
use atc::engine::Engine;
use atc::trace::Access;

/// Values per ingest block: big enough to amortize the batch dispatch
/// and the parallel fan-out, small enough to stay cache-friendly.
const BLOCK_VALUES: usize = 1 << 16;

/// Parsed `--filter*` flags.
pub struct FilterOptions {
    /// Whether filtering is enabled at all.
    pub enabled: bool,
    /// Filter worker threads (1 = serial in-process filtering).
    pub threads: usize,
    /// Emit tagged write-back records after the misses that caused them.
    pub writebacks: bool,
}

impl FilterOptions {
    /// Reads `--filter`, `--filter-threads N`, and `--filter-writebacks`
    /// from the raw argument list. The value-taking flags imply
    /// `--filter` on their own.
    pub fn parse(args: &[String]) -> Self {
        let threads = args
            .iter()
            .position(|a| a == "--filter-threads")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(1)
            .max(1);
        let writebacks = args.iter().any(|a| a == "--filter-writebacks");
        let enabled = args.iter().any(|a| a == "--filter")
            || args.iter().any(|a| a == "--filter-threads")
            || writebacks;
        Self {
            enabled,
            threads,
            writebacks,
        }
    }

    /// The value-taking flags this module owns (for `positional`).
    pub const VALUE_FLAGS: &'static [&'static str] = &["--filter-threads"];
}

/// Either filter form behind one `filter_batch` surface (boxed: the
/// serial filter embeds its caches by value).
enum Front {
    Serial(Box<CacheFilter>),
    Parallel(Box<ParallelCacheFilter>),
}

impl Front {
    fn new(opts: &FilterOptions) -> Self {
        if opts.threads > 1 {
            let engine = Engine::new(opts.threads);
            let f = if opts.writebacks {
                ParallelCacheFilter::paper_with_writebacks(engine, opts.threads)
            } else {
                ParallelCacheFilter::paper(engine, opts.threads)
            };
            Front::Parallel(Box::new(f))
        } else if opts.writebacks {
            Front::Serial(Box::new(CacheFilter::paper_with_writebacks()))
        } else {
            Front::Serial(Box::new(CacheFilter::paper()))
        }
    }

    fn filter_batch(&mut self, accesses: &[Access], out: &mut Vec<u64>) {
        match self {
            Front::Serial(f) => f.filter_batch(accesses, out),
            Front::Parallel(f) => f.filter_batch(accesses, out),
        }
    }

    fn report(&self) {
        let (accesses, misses, writebacks, ratio, threads) = match self {
            Front::Serial(f) => (f.accesses(), f.misses(), f.writebacks(), f.miss_ratio(), 1),
            Front::Parallel(f) => (
                f.accesses(),
                f.misses(),
                f.writebacks(),
                f.miss_ratio(),
                f.partitions(),
            ),
        };
        eprintln!(
            "filter: {accesses} accesses -> {misses} misses ({ratio:.4} miss ratio), \
             {writebacks} write-backs, {threads} thread(s)"
        );
    }
}

/// Streams stdin through the configured L1 filter in
/// [`BLOCK_VALUES`]-value blocks, handing each block of surviving trace
/// records (block addresses, plus tagged write-backs when enabled) to
/// `sink`. Trailing bytes that do not fill a full 64-bit value are
/// dropped, matching the unfiltered ingest loops. Prints filter
/// statistics to stderr when done.
pub fn run<F>(opts: &FilterOptions, mut sink: F) -> Result<(), Box<dyn Error>>
where
    F: FnMut(&[u64]) -> Result<(), Box<dyn Error>>,
{
    let mut front = Front::new(opts);
    let mut stdin = std::io::stdin().lock();
    let mut bytes = vec![0u8; BLOCK_VALUES * 8];
    let mut accesses = Vec::with_capacity(BLOCK_VALUES);
    let mut out = Vec::with_capacity(BLOCK_VALUES);
    loop {
        let n = read_block(&mut stdin, &mut bytes)?;
        if n < 8 {
            break;
        }
        accesses.clear();
        accesses.extend(bytes[..n - n % 8].chunks_exact(8).map(|c| {
            // Raw ingest carries no instruction/data split: treat every
            // value as a data read, the conservative choice (one shared
            // D-side geometry, no spurious write-back traffic).
            Access::read(u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        }));
        out.clear();
        front.filter_batch(&accesses, &mut out);
        sink(&out)?;
        if n < bytes.len() {
            break;
        }
    }
    front.report();
    Ok(())
}

/// Fills `buf` from `r` as far as possible; short counts mean EOF.
fn read_block<R: Read>(r: &mut R, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}
