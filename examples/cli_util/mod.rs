//! Tiny argument-parsing helpers shared by the example CLIs (included
//! via `#[path]`; this directory is not itself an example target).

/// First token that is neither a flag nor the value of a value-taking
/// flag.
pub fn positional<'a>(args: &'a [String], value_flags: &[&str]) -> Option<&'a String> {
    let mut skip = false;
    args.iter().find(|a| {
        if skip {
            skip = false;
            return false;
        }
        if a.starts_with("--") {
            skip = value_flags.contains(&a.as_str());
            return false;
        }
        true
    })
}
