//! Phase explorer: watch the lossy compressor's interval signatures at work.
//!
//! Builds a phased workload (three behaviours over disjoint regions,
//! cycling), splits the filtered trace into intervals, and prints each
//! interval's classification: the distance to its best-matching chunk and
//! which byte columns needed translation — §5 of the paper made visible.
//!
//! ```text
//! cargo run --release --example phase_explorer
//! ```

use std::error::Error;

use atc::cache::CacheFilter;
use atc::core::hist::ByteHistograms;
use atc::core::{Classification, LossyConfig, PhaseClassifier};
use atc::trace::gen::{Phase, Phased, PointerChase, Stream};
use atc::trace::Workload;

fn main() -> Result<(), Box<dyn Error>> {
    // Three phases: two structurally identical sweeps over different
    // regions (imitable via byte translation) and one pointer chase.
    let phases = vec![
        Phase::new(
            Box::new(Stream::new(0x0010_0000_0000, 8 << 20, 8)) as Workload,
            600_000,
        ),
        Phase::new(
            Box::new(Stream::new(0x0020_0000_0000, 8 << 20, 8)) as Workload,
            600_000,
        ),
        Phase::new(
            Box::new(PointerChase::new(0x0001_0000_0000, 1 << 15, 9)) as Workload,
            600_000,
        ),
    ];
    let workload = Phased::new(phases);

    let mut filter = CacheFilter::paper();
    let trace: Vec<u64> = filter.filter(workload).take(300_000).collect();

    let interval_len = 10_000;
    let cfg = LossyConfig {
        interval_len,
        ..LossyConfig::default()
    };
    println!(
        "trace: {} addresses, interval L = {}, threshold eps = {}\n",
        trace.len(),
        interval_len,
        cfg.threshold
    );
    println!(
        "{:>5} {:>9} {:>10} {:>12} {:>12}",
        "ivl", "outcome", "chunk", "distance", "translated"
    );

    let mut classifier = PhaseClassifier::new(cfg);
    let mut next_chunk = 0u64;
    for (i, interval) in trace.chunks(interval_len).enumerate() {
        if interval.len() < interval_len {
            break; // partial tail: the writer always stores it
        }
        match classifier.classify(interval, next_chunk) {
            Classification::NewChunk => {
                println!(
                    "{i:>5} {:>9} {next_chunk:>10} {:>12} {:>12}",
                    "chunk", "-", "-"
                );
                next_chunk += 1;
            }
            Classification::Imitate {
                chunk_id,
                distance,
                translations,
            } => {
                let cols: Vec<String> = translations
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.is_some())
                    .map(|(j, _)| j.to_string())
                    .collect();
                println!(
                    "{i:>5} {:>9} {chunk_id:>10} {distance:>12.4} {:>12}",
                    "imitate",
                    if cols.is_empty() {
                        "none".into()
                    } else {
                        cols.join(",")
                    }
                );
            }
        }
    }

    // Show the signature of two structurally identical intervals from the
    // two stream phases: sorted-histogram distance ~0, raw distance large.
    let a = &trace[..interval_len];
    let mid = trace.len() / 2;
    let b = &trace[mid..mid + interval_len];
    let ha = ByteHistograms::from_addrs(a);
    let hb = ByteHistograms::from_addrs(b);
    println!("\nsample interval pair (first vs mid-trace):");
    println!(
        "  sorted-histogram distance D = {:.4}",
        ha.sorted().distance(&hb.sorted())
    );
    for j in 0..8 {
        let d = ha.column_distance(&hb, j);
        if d > 0.0 {
            println!("  raw histogram distance, byte {j}: {d:.4}");
        }
    }
    Ok(())
}
