//! Quickstart: the whole pipeline in one page.
//!
//! Generates a synthetic workload, cache-filters it the way the paper's Pin
//! tool does, compresses the filtered trace with ATC in both modes, and
//! decompresses it back.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::error::Error;

use atc::cache::CacheFilter;
use atc::core::{AtcOptions, AtcReader, AtcWriter, LossyConfig, Mode};
use atc::trace::spec;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. A workload: the libquantum-like streaming profile.
    let profile = spec::profile("462.libquantum").expect("known profile");
    println!("workload: {} ({:?})", profile.name(), profile.class());

    // 2. Cache-filter it: 32 KB 4-way LRU L1I+L1D, 64-byte blocks.
    let mut filter = CacheFilter::paper();
    let trace: Vec<u64> = filter.filter(profile.workload(42)).take(200_000).collect();
    println!(
        "filtered {} accesses down to {} block addresses (miss ratio {:.1}%)",
        filter.accesses(),
        trace.len(),
        filter.miss_ratio() * 100.0
    );

    let scratch = std::env::temp_dir().join("atc-quickstart");
    let _ = std::fs::remove_dir_all(&scratch);

    // 3a. Lossless compression (mode 'c' in the original tool).
    let lossless_dir = scratch.join("lossless");
    let mut w = AtcWriter::create(&lossless_dir, Mode::Lossless)?;
    w.code_all(trace.iter().copied())?;
    let stats = w.finish()?;
    println!(
        "lossless: {:.3} bits/address ({} bytes for {} addresses)",
        stats.bits_per_address(),
        stats.compressed_bytes,
        stats.count
    );

    // 3b. Lossy compression (mode 'k'): intervals of 2000 addresses,
    // threshold 0.1 (the paper's epsilon).
    let lossy_dir = scratch.join("lossy");
    let cfg = LossyConfig {
        interval_len: 2000,
        ..LossyConfig::default()
    };
    let mut w = AtcWriter::with_options(
        &lossy_dir,
        Mode::Lossy(cfg),
        AtcOptions {
            codec: "bzip".into(),
            buffer: 200,
            threads: 1,
        },
    )?;
    w.code_all(trace.iter().copied())?;
    let stats = w.finish()?;
    println!(
        "lossy:    {:.3} bits/address ({} chunks, {} imitations over {} intervals)",
        stats.bits_per_address(),
        stats.chunks,
        stats.imitations,
        stats.intervals
    );

    // 4. Decompress and verify.
    let mut r = AtcReader::open(&lossless_dir)?;
    let exact = r.decode_all()?;
    assert_eq!(exact, trace, "lossless mode is exact");
    println!(
        "lossless decode verified: {} addresses identical",
        exact.len()
    );

    let mut r = AtcReader::open(&lossy_dir)?;
    let approx = r.decode_all()?;
    assert_eq!(approx.len(), trace.len());
    let same = approx.iter().zip(&trace).filter(|(a, b)| a == b).count();
    println!(
        "lossy decode: same length, {:.1}% of addresses identical \
         (the rest are translated imitations)",
        same as f64 / trace.len() as f64 * 100.0
    );

    std::fs::remove_dir_all(&scratch)?;
    Ok(())
}
