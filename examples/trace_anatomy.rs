//! Trace anatomy: why does a trace compress the way it does?
//!
//! Dissects two contrasting workloads with the analysis toolkit — byte
//! column entropies (the quantity bytesort exposes to the codec), delta
//! concentration (what TCgen's DFCM and the C/DC predictor exploit),
//! working-set stationarity (what lossy phase compression exploits) — and
//! shows the paper's §2 writeback tagging in the spare top bits.
//!
//! ```text
//! cargo run --release --example trace_anatomy
//! ```

use std::error::Error;

use atc::cache::{block_of, is_writeback, CacheFilter};
use atc::trace::analysis;
use atc::trace::spec;

fn dissect(name: &str) -> Result<(), Box<dyn Error>> {
    let p = spec::profile(name).ok_or("unknown profile")?;
    let mut filter = CacheFilter::paper();
    let trace: Vec<u64> = filter.filter(p.workload(7)).take(200_000).collect();

    println!("== {} ({:?})", p.name(), p.class());
    println!(
        "   footprint: {} distinct blocks over {} addresses",
        analysis::footprint(&trace),
        trace.len()
    );

    let entropies = analysis::column_entropies(&trace);
    let cols: Vec<String> = entropies.iter().map(|e| format!("{e:4.1}")).collect();
    println!(
        "   byte-column entropies (MSB..LSB, bits): [{}]",
        cols.join(" ")
    );

    let d = analysis::delta_profile(&trace, 3);
    println!(
        "   top-3 deltas cover {:.0}% of transitions: {:?}",
        d.coverage * 100.0,
        d.top
    );

    println!(
        "   stationarity (window = trace/50): {:.3}",
        analysis::stationarity(&trace, trace.len() / 50)
    );
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn Error>> {
    // Streaming vs pointer-chasing vs unstable: three compressibility classes.
    dissect("462.libquantum")?;
    dissect("429.mcf")?;
    dissect("403.gcc")?;

    // Writeback tagging (§2): the 6 spare top bits of a block address can
    // mark whether a record is a demand miss or a write-back.
    let p = spec::profile("470.lbm").ok_or("unknown profile")?;
    let mut filter = CacheFilter::paper_with_writebacks();
    // Mark 40% of the data reads as writes (generators model *where* memory
    // is touched; the store share is orthogonal).
    let workload = atc::trace::gen::WriteShare::new(p.workload(7), 0.4, 11);
    let tagged: Vec<u64> = filter.filter(workload).take(50_000).collect();
    let wb = tagged.iter().filter(|&&v| is_writeback(v)).count();
    println!("== writeback tagging on 470.lbm");
    println!(
        "   {} records: {} demand misses, {} tagged write-backs",
        tagged.len(),
        tagged.len() - wb,
        wb
    );
    if let Some(&v) = tagged.iter().find(|&&v| is_writeback(v)) {
        println!(
            "   example: record {v:#018x} is a write-back of block {:#x}",
            block_of(v)
        );
    }
    Ok(())
}
