//! # ATC — Online compression of cache-filtered address traces
//!
//! A full Rust reproduction of Pierre Michaud's ISPASS 2009 paper
//! *Online compression of cache-filtered address traces*, including every
//! substrate the evaluation depends on. This facade crate re-exports the
//! workspace:
//!
//! * [`core`] (`atc-core`) — the paper's contribution: the **bytesort**
//!   reversible transformation, **sorted byte-histogram** phase analysis,
//!   and the streaming **ATC** lossless/lossy compressor with its on-disk
//!   directory format.
//! * [`codec`] (`atc-codec`) — byte-level back ends: a bzip2-class
//!   BWT+MTF+RLE+Huffman block codec, a gzip-class LZSS codec, bit I/O,
//!   CRC-32, varints.
//! * [`trace`] (`atc-trace`) — synthetic SPEC-like workload generators and
//!   raw trace I/O (the Pin/SPEC substitute).
//! * [`cache`] (`atc-cache`) — set-associative LRU caches, the L1 cache
//!   filter, and a Mattson stack simulator (the Cheetah substitute).
//! * [`tcgen`] (`atc-tcgen`) — a TCgen/VPC-class value-prediction
//!   compressor, the paper's lossless baseline.
//! * [`prefetch`] (`atc-prefetch`) — the C/DC GHB address predictor used to
//!   assess lossy fidelity.
//! * [`store`] (`atc-store`) — the sharded multi-trace store: N ATC trace
//!   directories under one root with pluggable shard routing and merged
//!   or per-shard read-back.
//! * [`engine`] (`atc-engine`) — the shared work-stealing execution
//!   runtime every parallel layer (codec segments, readahead decode,
//!   multi-block Bzip, lossy classification/chunks, all store shards)
//!   submits its tasks to.
//! * [`net`] (`atc-net`) — the trace service: the `atcd` daemon serving
//!   packed store roots to many clients over TCP, and the blocking
//!   client.
//!
//! # Quick start
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use atc::core::{AtcReader, AtcWriter, Mode};
//!
//! let dir = std::env::temp_dir().join("atc-doc-quickstart");
//! # let _ = std::fs::remove_dir_all(&dir);
//!
//! // Compress a little trace losslessly ('c' mode in the original tool).
//! let mut w = AtcWriter::create(&dir, Mode::Lossless)?;
//! for addr in 0..1000u64 {
//!     w.code(addr * 64)?;
//! }
//! w.finish()?;
//!
//! // Decompress it back.
//! let mut r = AtcReader::open(&dir)?;
//! let mut out = Vec::new();
//! while let Some(v) = r.decode()? {
//!     out.push(v);
//! }
//! assert_eq!(out, (0..1000u64).map(|a| a * 64).collect::<Vec<_>>());
//! # std::fs::remove_dir_all(&dir)?;
//! # Ok(())
//! # }
//! ```

pub use atc_cache as cache;
pub use atc_codec as codec;
pub use atc_core as core;
pub use atc_engine as engine;
pub use atc_net as net;
pub use atc_prefetch as prefetch;
pub use atc_store as store;
pub use atc_tcgen as tcgen;
pub use atc_trace as trace;
