//! Integration: the §2 writeback-tagged trace format flows through the
//! whole system (filter → ATC → simulators), and the analysis module's
//! diagnostics predict compressibility classes.

use atc::cache::{block_of, is_writeback, CacheFilter};
use atc::core::{verify, AtcOptions, AtcReader, AtcWriter, Mode};
use atc::trace::gen::WriteShare;
use atc::trace::{analysis, spec};

#[test]
fn writeback_tagged_trace_roundtrips_losslessly() {
    let p = spec::profile("470.lbm").unwrap();
    let mut filter = CacheFilter::paper_with_writebacks();
    let workload = WriteShare::new(p.workload(3), 0.5, 9);
    let trace: Vec<u64> = filter.filter(workload).take(30_000).collect();
    let wb_count = trace.iter().filter(|&&v| is_writeback(v)).count();
    assert!(
        wb_count > 1000,
        "expected plenty of write-backs, got {wb_count}"
    );

    let dir = std::env::temp_dir().join(format!("atc-wb-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut w = AtcWriter::with_options(
        &dir,
        Mode::Lossless,
        AtcOptions {
            codec: "bzip".into(),
            buffer: 5000,
            threads: 1,
        },
    )
    .unwrap();
    w.code_all(trace.iter().copied()).unwrap();
    let stats = w.finish().unwrap();

    // Tag bits survive verification and decoding untouched.
    assert_eq!(verify(&dir).unwrap().addresses, trace.len() as u64);
    let out = AtcReader::open(&dir).unwrap().decode_all().unwrap();
    assert_eq!(out, trace);
    let wb_out = out.iter().filter(|&&v| is_writeback(v)).count();
    assert_eq!(wb_out, wb_count);

    // The demand-miss sub-stream is recoverable by stripping tags.
    let demand: Vec<u64> = out
        .iter()
        .filter(|&&v| !is_writeback(v))
        .map(|&v| block_of(v))
        .collect();
    assert_eq!(demand.len(), trace.len() - wb_count);

    // Tagged traces are still streaming-class compressible: the tag bit is
    // one extra byte-column value, which bytesort absorbs.
    assert!(
        stats.bits_per_address() < 4.0,
        "tagged lbm trace should stay compressible, got {:.3}",
        stats.bits_per_address()
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn analysis_separates_compressibility_classes() {
    let take = 100_000;
    let trace_of = |name: &str| {
        let p = spec::profile(name).unwrap();
        let mut f = CacheFilter::paper();
        f.filter(p.workload(5)).take(take).collect::<Vec<u64>>()
    };

    let streaming = trace_of("462.libquantum");
    let irregular = trace_of("458.sjeng");

    // Delta concentration tells streams from random traffic.
    let d_stream = analysis::delta_profile(&streaming, 4);
    let d_rand = analysis::delta_profile(&irregular, 4);
    assert!(
        d_stream.coverage > 0.9,
        "stream coverage {}",
        d_stream.coverage
    );
    assert!(d_rand.coverage < 0.3, "random coverage {}", d_rand.coverage);

    // Column entropy: the paper's structural point — block addresses carry
    // all their entropy in the low byte columns; the top half is null or
    // near-constant for both classes (this is what unshuffling exposes).
    // (Columns 3–4 can carry a little region-mixing entropy because code
    // and data live in separate address spaces.)
    for trace in [&streaming, &irregular] {
        let e = analysis::column_entropies(trace);
        assert!(
            e[..3].iter().all(|&x| x < 0.01),
            "top columns must be flat: {e:?}"
        );
        assert!(e[7] > 6.0, "low column must carry entropy: {e:?}");
    }

    // Both are stationary (sjeng's randomness is stable over time!), which
    // is exactly why lossy compression crushes it.
    assert!(analysis::stationarity(&irregular, take / 20) > 0.95);
}

#[test]
fn footprint_matches_stack_sim_cold_misses() {
    // Cross-validation: distinct blocks == cold misses of an infinite cache
    // (stack sim with 1 set and unbounded depth approximated by max assoc
    // >= footprint).
    let p = spec::profile("453.povray").unwrap();
    let mut f = CacheFilter::paper();
    let trace: Vec<u64> = f.filter(p.workload(2)).take(20_000).collect();
    let fp = analysis::footprint(&trace);

    let mut sim = atc::cache::StackSim::new(1, fp + 1);
    sim.run(trace.iter().copied());
    let cold_misses = (sim.miss_ratio(fp + 1) * trace.len() as f64).round() as usize;
    assert_eq!(cold_misses, fp);
}
