//! Container-format integration: reopening, codec matrix, metadata, and
//! failure handling of the ATC trace directory.

use atc::core::{AtcOptions, AtcReader, AtcWriter, LossyConfig, Mode};

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("atc-ct-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sample_trace() -> Vec<u64> {
    (0..5000u64)
        .map(|i| 0x4000_0000 + (i % 700) * 64 + (i / 700) * 0x10_0000)
        .collect()
}

#[test]
fn codec_matrix_both_modes() {
    let trace = sample_trace();
    for codec in ["bzip", "lz", "store"] {
        for lossy in [false, true] {
            let dir = scratch(&format!("matrix-{codec}-{lossy}"));
            let mode = if lossy {
                Mode::Lossy(LossyConfig {
                    interval_len: 500,
                    ..LossyConfig::default()
                })
            } else {
                Mode::Lossless
            };
            let mut w = AtcWriter::with_options(
                &dir,
                mode,
                AtcOptions {
                    codec: codec.into(),
                    buffer: 250,
                    threads: 1,
                },
            )
            .unwrap();
            w.code_all(trace.iter().copied()).unwrap();
            w.finish().unwrap();

            let mut r = AtcReader::open(&dir).unwrap();
            assert_eq!(r.meta().codec, codec);
            let out = r.decode_all().unwrap();
            assert_eq!(out.len(), trace.len(), "codec={codec} lossy={lossy}");
            if !lossy {
                assert_eq!(out, trace);
            }
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}

#[test]
fn meta_reflects_parameters() {
    let dir = scratch("meta");
    let mut w = AtcWriter::with_options(
        &dir,
        Mode::Lossy(LossyConfig {
            interval_len: 123,
            threshold: 0.25,
            ..LossyConfig::default()
        }),
        AtcOptions {
            codec: "lz".into(),
            buffer: 77,
            threads: 1,
        },
    )
    .unwrap();
    w.code_all(0..1000u64).unwrap();
    w.finish().unwrap();

    let r = AtcReader::open(&dir).unwrap();
    let m = r.meta();
    assert_eq!(m.mode, "lossy");
    assert_eq!(m.codec, "lz");
    assert_eq!(m.buffer, 77);
    assert_eq!(m.interval_len, 123);
    assert!((m.threshold - 0.25).abs() < 1e-12);
    assert_eq!(m.count, 1000);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn reopen_multiple_times() {
    let dir = scratch("reopen");
    let trace = sample_trace();
    let mut w = AtcWriter::create(&dir, Mode::Lossless).unwrap();
    w.code_all(trace.iter().copied()).unwrap();
    w.finish().unwrap();
    for _ in 0..3 {
        let mut r = AtcReader::open(&dir).unwrap();
        assert_eq!(r.decode_all().unwrap(), trace);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn missing_chunk_file_is_reported() {
    let dir = scratch("missing-chunk");
    let mut w = AtcWriter::with_options(
        &dir,
        Mode::Lossy(LossyConfig {
            interval_len: 100,
            ..LossyConfig::default()
        }),
        AtcOptions {
            codec: "store".into(),
            buffer: 50,
            threads: 1,
        },
    )
    .unwrap();
    // Two distinct intervals -> two chunks.
    w.code_all((0..100u64).map(|i| i * 64)).unwrap();
    w.code_all(std::iter::repeat_n(42u64, 100)).unwrap();
    w.finish().unwrap();
    std::fs::remove_file(dir.join("chunk-000001.atc")).unwrap();
    let mut r = AtcReader::open(&dir).unwrap();
    assert!(r.decode_all().is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupted_info_is_reported() {
    let dir = scratch("bad-info");
    let mut w = AtcWriter::with_options(
        &dir,
        Mode::Lossy(LossyConfig {
            interval_len: 100,
            ..LossyConfig::default()
        }),
        AtcOptions {
            codec: "bzip".into(),
            buffer: 50,
            threads: 1,
        },
    )
    .unwrap();
    w.code_all((0..1000u64).map(|i| i * 64)).unwrap();
    w.finish().unwrap();
    // Truncate the interval trace.
    let info = dir.join("info.atc");
    let bytes = std::fs::read(&info).unwrap();
    std::fs::write(&info, &bytes[..bytes.len() / 2]).unwrap();
    let mut r = AtcReader::open(&dir).unwrap();
    assert!(r.decode_all().is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unknown_codec_in_meta_rejected() {
    let dir = scratch("bad-codec");
    let mut w = AtcWriter::create(&dir, Mode::Lossless).unwrap();
    w.code_all([1u64, 2, 3]).unwrap();
    w.finish().unwrap();
    let meta = dir.join("meta");
    let text = std::fs::read_to_string(&meta).unwrap();
    std::fs::write(&meta, text.replace("codec=bzip", "codec=zstd")).unwrap();
    assert!(AtcReader::open(&dir).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn large_single_interval_trace() {
    // Interval larger than the whole trace: one partial interval, stored
    // losslessly even in lossy mode.
    let dir = scratch("one-interval");
    let trace = sample_trace();
    let mut w = AtcWriter::with_options(
        &dir,
        Mode::Lossy(LossyConfig {
            interval_len: 1_000_000,
            ..LossyConfig::default()
        }),
        AtcOptions {
            codec: "bzip".into(),
            buffer: 1000,
            threads: 1,
        },
    )
    .unwrap();
    w.code_all(trace.iter().copied()).unwrap();
    let stats = w.finish().unwrap();
    assert_eq!(stats.chunks, 1);
    assert_eq!(stats.imitations, 0);
    let out = AtcReader::open(&dir).unwrap().decode_all().unwrap();
    assert_eq!(out, trace, "partial interval must be exact");
    std::fs::remove_dir_all(&dir).unwrap();
}
