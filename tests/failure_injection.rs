//! Failure injection: randomized corruption of every file in the ATC
//! container must produce a clean error — never a panic, never silently
//! wrong data.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use atc::core::{AtcOptions, AtcReader, AtcWriter, LossyConfig, Mode};

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("atc-fi-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Builds a lossy container with a few chunks and imitations.
fn build(dir: &std::path::Path) -> Vec<u64> {
    let mut trace = Vec::new();
    for lap in 0u64..6 {
        let base = (lap % 3) << 32; // three recurring phases
        trace.extend((0..500u64).map(|i| base + i * 64));
    }
    let mut w = AtcWriter::with_options(
        dir,
        Mode::Lossy(LossyConfig {
            interval_len: 500,
            ..LossyConfig::default()
        }),
        AtcOptions {
            codec: "bzip".into(),
            buffer: 100,
            threads: 1,
        },
    )
    .unwrap();
    w.code_all(trace.iter().copied()).unwrap();
    w.finish().unwrap();
    trace
}

/// Decodes; returns Ok(values) or the error. Must never panic.
fn try_decode(dir: &std::path::Path) -> Result<Vec<u64>, atc::core::AtcError> {
    AtcReader::open(dir)?.decode_all()
}

#[test]
fn random_single_byte_corruptions_never_panic_or_lie() {
    let dir = scratch("flip");
    let original = build(&dir);
    let files: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let mut outcomes = (0u32, 0u32); // (errors, silent-identical)
    for round in 0..60 {
        // Corrupt one random byte of one random file.
        let file = &files[rng.random_range(0..files.len())];
        let mut bytes = std::fs::read(file).unwrap();
        if bytes.is_empty() {
            continue;
        }
        let pos = rng.random_range(0..bytes.len());
        let orig_byte = bytes[pos];
        let flip = 1u8 << rng.random_range(0..8);
        bytes[pos] ^= flip;
        std::fs::write(file, &bytes).unwrap();

        match try_decode(&dir) {
            Err(_) => outcomes.0 += 1,
            Ok(values) => {
                // Some corruptions are benign (e.g. flipping a byte of a
                // translation table changes lossy content legitimately, or
                // meta whitespace). What is NEVER acceptable is a lossless
                // payload silently changing; here the container is lossy,
                // so we only require: no panic, and the value count intact
                // unless an error was reported.
                assert_eq!(
                    values.len(),
                    original.len(),
                    "round {round}: silent length change after corrupting {file:?} at {pos}"
                );
                outcomes.1 += 1;
            }
        }

        // Restore.
        bytes[pos] = orig_byte;
        std::fs::write(file, &bytes).unwrap();
    }
    // Sanity: the harness exercised both paths and the restored container
    // still decodes exactly.
    assert!(
        outcomes.0 > 0,
        "no corruption was ever detected: {outcomes:?}"
    );
    assert_eq!(try_decode(&dir).unwrap().len(), original.len());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn lossless_corruption_is_always_detected_or_exact() {
    let dir = scratch("lossless-flip");
    let trace: Vec<u64> = (0..20_000u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9) >> 8)
        .collect();
    let mut w = AtcWriter::with_options(
        &dir,
        Mode::Lossless,
        AtcOptions {
            codec: "bzip".into(),
            buffer: 4000,
            threads: 1,
        },
    )
    .unwrap();
    w.code_all(trace.iter().copied()).unwrap();
    w.finish().unwrap();

    let data_file = dir.join("data.atc");
    let original_bytes = std::fs::read(&data_file).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..40 {
        let mut bytes = original_bytes.clone();
        let pos = rng.random_range(0..bytes.len());
        bytes[pos] ^= 1 << rng.random_range(0..8);
        std::fs::write(&data_file, &bytes).unwrap();
        // CRC-32 per block: a flipped payload bit must surface as an error,
        // not as silently different data.
        if let Ok(values) = try_decode(&dir) {
            assert_eq!(values, trace, "corruption at byte {pos} went undetected");
        }
    }
    std::fs::write(&data_file, &original_bytes).unwrap();
    assert_eq!(try_decode(&dir).unwrap(), trace);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncated_files_error_cleanly() {
    let dir = scratch("trunc");
    build(&dir);
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let bytes = std::fs::read(&path).unwrap();
        for cut in [0, bytes.len() / 2] {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            // Either a clean error, or (for e.g. a truncated unused tail) a
            // successful decode — never a panic.
            let _ = try_decode(&dir);
        }
        std::fs::write(&path, &bytes).unwrap();
    }
    assert!(try_decode(&dir).is_ok());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn swapped_chunk_files_detected_by_length_or_content() {
    let dir = scratch("swap");
    // Two chunks with different lengths: interval 700 then partial 300.
    let mut w = AtcWriter::with_options(
        &dir,
        Mode::Lossy(LossyConfig {
            interval_len: 700,
            ..LossyConfig::default()
        }),
        AtcOptions {
            codec: "bzip".into(),
            buffer: 100,
            threads: 1,
        },
    )
    .unwrap();
    w.code_all((0..700u64).map(|i| i * 64)).unwrap();
    w.code_all(std::iter::repeat_n(99u64, 300)).unwrap();
    w.finish().unwrap();
    let a = dir.join("chunk-000000.atc");
    let b = dir.join("chunk-000001.atc");
    let (ba, bb) = (std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
    std::fs::write(&a, &bb).unwrap();
    std::fs::write(&b, &ba).unwrap();
    assert!(
        try_decode(&dir).is_err(),
        "length mismatch must be reported"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
