//! The paper's headline claims as executable assertions, at test scale.
//!
//! These are deliberately coarse (factor-level) checks: they pin the
//! *direction and rough magnitude* of each claim so a regression that
//! silently destroys an effect (not just its exact value) fails CI.

use atc::codec::{Bzip, Codec};
use atc::core::bytesort::{bytesort_forward, unshuffle};
use atc::core::{AtcOptions, AtcWriter, LossyConfig, Mode};

fn bytes_of(cols: &[Vec<u8>]) -> Vec<u8> {
    cols.iter().flat_map(|c| c.iter().copied()).collect()
}

/// §4.1: on a trace interleaving two regions with identical internal
/// patterns, bytesort exposes the repetition that unshuffling alone leaves
/// hidden, and both beat raw byte compression.
#[test]
fn claim_bytesort_beats_unshuffle_on_region_interleave() {
    // The paper's F2/A1 example, scaled up: two regions with identical
    // pattern structure, interleaved 2:1.
    let mut addrs = Vec::new();
    let mut k = 0u64;
    for i in 0..60_000u64 {
        let pattern = (i * 37) % 50_021; // shared irregular pattern
        addrs.push(0x00F2_0000_0000 + pattern * 64);
        if i % 2 == 1 {
            addrs.push(0x00A1_0000_0000 + ((k * 37) % 50_021) * 64);
            k += 1;
        }
    }
    let codec = Bzip::default();
    let raw: Vec<u8> = addrs.iter().flat_map(|a| a.to_le_bytes()).collect();
    let c_raw = codec.compress(&raw).len();
    let c_us = codec.compress(&bytes_of(&unshuffle(&addrs))).len();
    let c_bs = codec.compress(&bytes_of(&bytesort_forward(&addrs))).len();
    assert!(
        c_us < c_raw,
        "unshuffle must beat raw here: {c_us} vs {c_raw}"
    );
    assert!(
        (c_bs as f64) < c_us as f64 * 0.9,
        "bytesort must beat unshuffle by >10%: {c_bs} vs {c_us}"
    );
}

/// §5 + Figure 8: a stationary random-value trace compresses by ~the
/// number of intervals per chunk under lossy mode, despite being
/// incompressible losslessly.
#[test]
fn claim_lossy_ratio_tracks_interval_count_on_random() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(1);
    let n = 100_000usize;
    let values: Vec<u64> = (0..n).map(|_| rng.random()).collect();

    let dir = std::env::temp_dir().join(format!("atc-claim8-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut w = AtcWriter::with_options(
        &dir,
        Mode::Lossy(LossyConfig {
            interval_len: n / 10,
            ..LossyConfig::default()
        }),
        AtcOptions {
            codec: "bzip".into(),
            buffer: n / 100,
            threads: 1,
        },
    )
    .unwrap();
    w.code_all(values.iter().copied()).unwrap();
    let stats = w.finish().unwrap();
    assert_eq!(stats.chunks, 1, "all intervals must look alike");
    let ratio = stats.ratio();
    assert!(
        (8.0..=11.0).contains(&ratio),
        "expected ~10x (one chunk for 10 intervals), got {ratio:.2}x"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// §5's motivating example: random accesses over N blocks; a cache with
/// C <= N tags has hit ratio ~ C/N — and the *lossy* trace must reproduce
/// it (this is the myopic-interval problem when it goes right).
#[test]
fn claim_lossy_preserves_c_over_n_hit_ratio() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let n_blocks = 2048u64;
    let mut rng = StdRng::seed_from_u64(2);
    let exact: Vec<u64> = (0..200_000)
        .map(|_| rng.random_range(0..n_blocks))
        .collect();

    let dir = std::env::temp_dir().join(format!("atc-claim-cn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut w = AtcWriter::with_options(
        &dir,
        Mode::Lossy(LossyConfig {
            interval_len: 20_000,
            ..LossyConfig::default()
        }),
        AtcOptions {
            codec: "bzip".into(),
            buffer: 2_000,
            threads: 1,
        },
    )
    .unwrap();
    w.code_all(exact.iter().copied()).unwrap();
    w.finish().unwrap();
    let approx = atc::core::AtcReader::open(&dir)
        .unwrap()
        .decode_all()
        .unwrap();

    for c in [256usize, 1024] {
        let mut sim = atc::cache::StackSim::new(1, c);
        sim.run(approx.iter().copied());
        let expected_miss = 1.0 - c as f64 / n_blocks as f64;
        let got = sim.miss_ratio(c);
        assert!(
            (got - expected_miss).abs() < 0.05,
            "C={c}: lossy trace miss ratio {got:.3}, theory {expected_miss:.3}"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// §6: lossless mode "is completely safe" on arbitrary 64-bit values —
/// spot-check with a decidedly non-address-like stream through every codec.
#[test]
fn claim_lossless_mode_is_safe_for_any_values() {
    let values: Vec<u64> = (0..30_000u64)
        .map(|i| {
            i.wrapping_mul(0xDEAD_BEEF_CAFE_F00D)
                .rotate_left((i % 64) as u32)
        })
        .collect();
    for codec in ["bzip", "lz", "store"] {
        let dir =
            std::env::temp_dir().join(format!("atc-claim-safe-{codec}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut w = AtcWriter::with_options(
            &dir,
            Mode::Lossless,
            AtcOptions {
                codec: codec.into(),
                buffer: 7_777,
                threads: 1,
            },
        )
        .unwrap();
        w.code_all(values.iter().copied()).unwrap();
        w.finish().unwrap();
        let out = atc::core::AtcReader::open(&dir)
            .unwrap()
            .decode_all()
            .unwrap();
        assert_eq!(out, values, "codec {codec}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Table 2's direction: bytesort's inverse transform is cheap relative to
/// the byte-level codec (the paper: bzip2 is ~65% of decompression time).
#[test]
fn claim_inverse_bytesort_cheaper_than_codec() {
    use std::time::Instant;
    let addrs: Vec<u64> = (0..500_000u64)
        .map(|i| 0x4000_0000 + (i % 70_001) * 64)
        .collect();
    let cols = bytesort_forward(&addrs);
    let stream = bytes_of(&cols);
    let codec = Bzip::default();
    let packed = codec.compress(&stream);

    let t0 = Instant::now();
    let _ = codec.decompress(&packed).unwrap();
    let codec_time = t0.elapsed();

    let t1 = Instant::now();
    let _ = atc::core::bytesort::bytesort_inverse(&cols).unwrap();
    let inverse_time = t1.elapsed();

    assert!(
        inverse_time < codec_time,
        "inverse bytesort ({inverse_time:?}) should be cheaper than the codec ({codec_time:?})"
    );
}
