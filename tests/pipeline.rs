//! End-to-end integration: workload generation → cache filtering → ATC
//! compression → decompression → simulation fidelity.

use atc::cache::{CacheFilter, StackSim};
use atc::core::{AtcOptions, AtcReader, AtcWriter, LossyConfig, Mode};
use atc::prefetch::{CdcConfig, CdcPredictor};
use atc::trace::spec;

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("atc-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn every_profile_lossless_roundtrips() {
    for p in spec::profiles() {
        let trace = filtered_trace(p.workload(11), 20_000);
        let dir = scratch(&format!("ll-{}", p.number()));
        let mut w = AtcWriter::with_options(
            &dir,
            Mode::Lossless,
            AtcOptions {
                codec: "bzip".into(),
                buffer: 3_000,
                threads: 1,
            },
        )
        .unwrap();
        w.code_all(trace.iter().copied()).unwrap();
        let stats = w.finish().unwrap();
        assert_eq!(stats.count, trace.len() as u64);

        let mut r = AtcReader::open(&dir).unwrap();
        assert_eq!(r.decode_all().unwrap(), trace, "{}", p.name());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn every_profile_lossy_preserves_length_and_histograms() {
    use atc::core::hist::ByteHistograms;
    for p in spec::profiles() {
        let trace = filtered_trace(p.workload(13), 30_000);
        let dir = scratch(&format!("ly-{}", p.number()));
        let interval = 1000;
        let mut w = AtcWriter::with_options(
            &dir,
            Mode::Lossy(LossyConfig {
                interval_len: interval,
                ..LossyConfig::default()
            }),
            AtcOptions {
                codec: "bzip".into(),
                buffer: 500,
                threads: 1,
            },
        )
        .unwrap();
        w.code_all(trace.iter().copied()).unwrap();
        let stats = w.finish().unwrap();
        assert!(stats.chunks >= 1);

        let mut r = AtcReader::open(&dir).unwrap();
        let approx = r.decode_all().unwrap();
        assert_eq!(approx.len(), trace.len(), "{}", p.name());

        // Interval-level invariant: every reconstructed interval's *sorted*
        // histograms are within ~2*eps of the exact interval's (eps to match
        // the chunk + the approximation introduced by translation).
        for (i, (e, a)) in trace
            .chunks(interval)
            .zip(approx.chunks(interval))
            .enumerate()
        {
            if e.len() < interval {
                break;
            }
            let d = ByteHistograms::from_addrs(e)
                .sorted()
                .distance(&ByteHistograms::from_addrs(a).sorted());
            assert!(
                d <= 0.2 + 1e-9,
                "{} interval {i}: sorted-histogram distance {d}",
                p.name()
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn lossy_miss_ratio_fidelity_on_stationary_random() {
    // The paper's §5 motivating case: random accesses over N blocks.
    // The lossy trace must predict hit ratio ~ C/N for a C-tag cache.
    let p = spec::profile("458.sjeng").unwrap();
    let exact = filtered_trace(p.workload(7), 100_000);
    let dir = scratch("sjeng-fid");
    let mut w = AtcWriter::with_options(
        &dir,
        Mode::Lossy(LossyConfig {
            interval_len: 1000,
            ..LossyConfig::default()
        }),
        AtcOptions {
            codec: "bzip".into(),
            buffer: 100,
            threads: 1,
        },
    )
    .unwrap();
    w.code_all(exact.iter().copied()).unwrap();
    let stats = w.finish().unwrap();
    // Stationary trace: almost all intervals imitate.
    assert!(
        stats.imitations * 10 >= stats.intervals * 8,
        "expected mostly imitations, got {stats:?}"
    );
    let approx = AtcReader::open(&dir).unwrap().decode_all().unwrap();

    for sets in [256usize, 1024] {
        let mut se = StackSim::new(sets, 16);
        se.run(exact.iter().copied());
        let mut sa = StackSim::new(sets, 16);
        sa.run(approx.iter().copied());
        for ways in [1, 4, 16] {
            let (e, a) = (se.miss_ratio(ways), sa.miss_ratio(ways));
            assert!(
                (e - a).abs() < 0.05,
                "sets={sets} ways={ways}: exact {e} vs approx {a}"
            );
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn cdc_predictor_fidelity() {
    // Figure 5's invariant at test scale: the C/DC outcome mix on the lossy
    // trace resembles the exact one.
    let p = spec::profile("456.hmmer").unwrap();
    let exact = filtered_trace(p.workload(3), 60_000);
    let dir = scratch("cdc-fid");
    let mut w = AtcWriter::with_options(
        &dir,
        Mode::Lossy(LossyConfig {
            interval_len: 600,
            ..LossyConfig::default()
        }),
        AtcOptions {
            codec: "bzip".into(),
            buffer: 60,
            threads: 1,
        },
    )
    .unwrap();
    w.code_all(exact.iter().copied()).unwrap();
    w.finish().unwrap();
    let approx = AtcReader::open(&dir).unwrap().decode_all().unwrap();

    let run = |t: &[u64]| {
        let mut pred = CdcPredictor::new(CdcConfig::paper());
        pred.run(t.iter().copied())
    };
    let (se, sa) = (run(&exact), run(&approx));
    assert!(
        (se.correct_fraction() - sa.correct_fraction()).abs() < 0.15,
        "exact {se:?} vs lossy {sa:?}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn filter_then_compress_interleaves_i_and_d() {
    // The trace format interleaves instruction and data misses in access
    // order; both must survive the compression roundtrip.
    let p = spec::profile("445.gobmk").unwrap();
    let mut filter = CacheFilter::paper();
    let trace: Vec<u64> = filter.filter(p.workload(5)).take(10_000).collect();
    // Code lives at TEXT (low addresses), data far above: both present.
    let code_blocks = trace.iter().filter(|&&b| b < (1 << 20)).count();
    let data_blocks = trace.len() - code_blocks;
    assert!(code_blocks > 100, "expected I-misses, got {code_blocks}");
    assert!(data_blocks > 100, "expected D-misses, got {data_blocks}");

    let dir = scratch("interleave");
    let mut w = AtcWriter::create(&dir, Mode::Lossless).unwrap();
    w.code_all(trace.iter().copied()).unwrap();
    w.finish().unwrap();
    assert_eq!(AtcReader::open(&dir).unwrap().decode_all().unwrap(), trace);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Wraps `atc::cache::filtered_trace` for workload iterators.
fn filtered_trace(workload: atc::trace::Workload, n: usize) -> Vec<u64> {
    let mut filter = CacheFilter::paper();
    filter.filter(workload).take(n).collect()
}
