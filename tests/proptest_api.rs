//! Property-based tests over the public API: round-trip identities and
//! structural invariants that must hold for *arbitrary* inputs, not just
//! the well-behaved traces the experiments use.

use proptest::collection::vec;
use proptest::prelude::*;

use atc::core::bytesort::{bytesort_forward, bytesort_inverse, unshuffle, unshuffle_inverse};
use atc::core::hist::{translate_addr, ByteHistograms, Translation};
use atc::core::{AtcOptions, AtcReader, AtcWriter, LossyConfig, Mode};

fn scratch(tag: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "atc-prop-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Thread count override for the threaded container proptests.
///
/// The CI thread matrix sets `ATC_TEST_THREADS` (a single value, or a
/// comma list whose first entry is used here) so the byte-identity
/// invariant is exercised at a pinned parallelism on real multi-core
/// runners; unset, the proptest strategy picks the count.
fn env_threads() -> Option<usize> {
    std::env::var("ATC_TEST_THREADS")
        .ok()?
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .find(|&t| (1..=64).contains(&t))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bytesort_roundtrip(addrs in vec(any::<u64>(), 0..2000)) {
        let cols = bytesort_forward(&addrs);
        prop_assert_eq!(bytesort_inverse(&cols).unwrap(), addrs);
    }

    #[test]
    fn unshuffle_roundtrip(addrs in vec(any::<u64>(), 0..2000)) {
        let cols = unshuffle(&addrs);
        prop_assert_eq!(unshuffle_inverse(&cols).unwrap(), addrs);
    }

    #[test]
    fn bytesort_is_column_permutation(addrs in vec(any::<u64>(), 1..500)) {
        // Every output column is a permutation of the corresponding input
        // byte column (sorting reorders, never alters, bytes).
        let cols = bytesort_forward(&addrs);
        for (j, col) in cols.iter().enumerate() {
            let mut expect: Vec<u8> =
                addrs.iter().map(|&a| (a >> (8 * (7 - j))) as u8).collect();
            let mut got = col.clone();
            expect.sort_unstable();
            got.sort_unstable();
            prop_assert_eq!(got, expect, "column {}", j);
        }
    }

    #[test]
    fn histogram_distance_properties(
        a in vec(any::<u64>(), 1..500),
        b in vec(any::<u64>(), 1..500),
    ) {
        let sa = ByteHistograms::from_addrs(&a).sorted();
        let sb = ByteHistograms::from_addrs(&b).sorted();
        let dab = sa.distance(&sb);
        let dba = sb.distance(&sa);
        prop_assert!((dab - dba).abs() < 1e-12, "symmetry");
        prop_assert!((0.0..=2.0).contains(&dab), "bounds: {}", dab);
        prop_assert_eq!(sa.distance(&sa), 0.0, "identity");
    }

    #[test]
    fn translations_are_permutations(
        a in vec(any::<u64>(), 1..300),
        b in vec(any::<u64>(), 1..300),
    ) {
        let sa = ByteHistograms::from_addrs(&a).sorted();
        let sb = ByteHistograms::from_addrs(&b).sorted();
        for j in 0..8 {
            let t = Translation::between(sa.permutation(j), sb.permutation(j));
            prop_assert!(Translation::from_table(*t.table()).is_some());
        }
    }

    #[test]
    fn translation_preserves_distinctness(
        addrs in vec(any::<u64>(), 1..300),
        other in vec(any::<u64>(), 1..300),
    ) {
        // Byte translation maps distinct addresses to distinct addresses
        // (the paper: "permutations t[j] map each unique address of
        // interval A to a unique address").
        let sa = ByteHistograms::from_addrs(&addrs).sorted();
        let sb = ByteHistograms::from_addrs(&other).sorted();
        let mut translations: [Option<Translation>; 8] = Default::default();
        for (j, slot) in translations.iter_mut().enumerate() {
            *slot = Some(Translation::between(sa.permutation(j), sb.permutation(j)));
        }
        let mut uniq_in: Vec<u64> = addrs.clone();
        uniq_in.sort_unstable();
        uniq_in.dedup();
        let mut uniq_out: Vec<u64> = addrs
            .iter()
            .map(|&x| translate_addr(x, &translations))
            .collect();
        uniq_out.sort_unstable();
        uniq_out.dedup();
        prop_assert_eq!(uniq_in.len(), uniq_out.len());
    }

    #[test]
    fn atc_lossless_roundtrip_arbitrary_values(
        values in vec(any::<u64>(), 0..3000),
        buffer in 1usize..500,
        seed in any::<u64>(),
    ) {
        let dir = scratch(seed);
        let mut w = AtcWriter::with_options(
            &dir,
            Mode::Lossless,
            AtcOptions { codec: "bzip".into(), buffer, threads: 1 },
        ).unwrap();
        w.code_all(values.iter().copied()).unwrap();
        w.finish().unwrap();
        let mut r = AtcReader::open(&dir).unwrap();
        let out = r.decode_all().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert_eq!(out, values);
    }

    #[test]
    fn atc_lossy_preserves_length(
        values in vec(any::<u64>(), 0..3000),
        interval in 1usize..400,
        seed in any::<u64>(),
    ) {
        let dir = scratch(seed.wrapping_add(1));
        let mut w = AtcWriter::with_options(
            &dir,
            Mode::Lossy(LossyConfig {
                interval_len: interval,
                ..LossyConfig::default()
            }),
            AtcOptions { codec: "bzip".into(), buffer: (interval / 2).max(1), threads: 1 },
        ).unwrap();
        w.code_all(values.iter().copied()).unwrap();
        let stats = w.finish().unwrap();
        prop_assert_eq!(stats.count, values.len() as u64);
        let mut r = AtcReader::open(&dir).unwrap();
        let out = r.decode_all().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert_eq!(out.len(), values.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // The whole container, written and read at several thread counts,
    // must reproduce arbitrary value streams exactly — and the
    // multi-threaded writer's stats must match the serial writer's.
    #[test]
    fn atc_threaded_container_matches_serial(
        values in vec(any::<u64>(), 0..3000),
        buffer in 1usize..500,
        threads in 2usize..6,
        seed in any::<u64>(),
    ) {
        let threads = env_threads().unwrap_or(threads);
        let write = |threads: usize, tag: u64| {
            let dir = scratch(tag);
            let mut w = AtcWriter::with_options(
                &dir,
                Mode::Lossless,
                AtcOptions { codec: "bzip".into(), buffer, threads },
            ).unwrap();
            w.code_all(values.iter().copied()).unwrap();
            let stats = w.finish().unwrap();
            (dir, stats)
        };
        let (serial_dir, serial_stats) = write(1, seed.wrapping_add(101));
        let (threaded_dir, threaded_stats) = write(threads, seed.wrapping_add(202));
        prop_assert_eq!(serial_stats, threaded_stats);

        let mut r = atc::core::AtcReader::open_with(
            &threaded_dir,
            atc::core::ReadOptions { threads, ..Default::default() },
        ).unwrap();
        let out = r.decode_all().unwrap();
        let _ = std::fs::remove_dir_all(&serial_dir);
        let _ = std::fs::remove_dir_all(&threaded_dir);
        prop_assert_eq!(out, values);
    }

    // Random access must agree with the linear decode at every frame
    // boundary, for every codec and worker count — including frames that
    // land mid-segment and the one-past-the-end park position (small
    // buffers over multi-segment traces cross segment boundaries).
    #[test]
    fn seek_matches_linear_decode(
        values in vec(any::<u64>(), 0..3000),
        buffer in 1usize..500,
        codec_idx in 0usize..3,
        threads_sel in 0usize..2,
        frame_sel in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let codec = ["bzip", "lz", "store"][codec_idx];
        let threads = [1usize, 4][threads_sel];
        let dir = scratch(seed.wrapping_add(303));
        let mut w = AtcWriter::with_options(
            &dir,
            Mode::Lossless,
            AtcOptions { codec: codec.into(), buffer, threads: 1 },
        ).unwrap();
        w.code_all(values.iter().copied()).unwrap();
        w.finish().unwrap();

        let buffer = buffer as u64;
        let total_frames = (values.len() as u64).div_ceil(buffer);
        let frame = frame_sel % (total_frames + 1);
        let mut r = atc::core::AtcReader::open_with(
            &dir,
            atc::core::ReadOptions { threads, ..Default::default() },
        ).unwrap();
        r.seek(frame).unwrap();
        let rest = r.decode_all().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        let at = ((frame * buffer) as usize).min(values.len());
        prop_assert_eq!(rest, &values[at..]);
    }

    // Cache-enabled reads are byte-identical to the cold decode, the
    // warm pass re-decodes nothing, and every segment the cold pass
    // decoded comes back as a recorded hit.
    #[test]
    fn cached_reads_match_cold_with_hits(
        values in vec(any::<u64>(), 0..3000),
        buffer in 1usize..500,
        seed in any::<u64>(),
    ) {
        use std::sync::Arc;
        use atc::cache::SegmentCache;
        let dir = scratch(seed.wrapping_add(404));
        let mut w = AtcWriter::with_options(
            &dir,
            Mode::Lossless,
            AtcOptions { codec: "lz".into(), buffer, threads: 1 },
        ).unwrap();
        w.code_all(values.iter().copied()).unwrap();
        w.finish().unwrap();

        let cache = Arc::new(SegmentCache::new(64 << 20));
        let open = |cache: &Arc<SegmentCache>| atc::core::AtcReader::open_with(
            &dir,
            atc::core::ReadOptions {
                segment_cache: Some(cache.clone()),
                ..Default::default()
            },
        ).unwrap();
        let mut cold = open(&cache);
        let cold_out = cold.decode_all().unwrap();
        let decoded_cold = cold.segments_decoded().unwrap();
        let mut warm = open(&cache);
        let warm_out = warm.decode_all().unwrap();
        let warm_decoded = warm.segments_decoded();
        let hits = cache.stats().hits;
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert_eq!(&cold_out, &values);
        prop_assert_eq!(&warm_out, &values);
        prop_assert_eq!(warm_decoded, Some(0));
        prop_assert_eq!(hits, decoded_cold);
    }

    #[test]
    fn tcgen_roundtrip_arbitrary(values in vec(any::<u64>(), 0..2000)) {
        use std::sync::Arc;
        let tc = atc::tcgen::Tcgen::new(
            atc::tcgen::TcgenConfig { table_lines: 256 },
            Arc::new(atc::codec::Bzip::default()),
        );
        let packed = tc.compress(&values);
        prop_assert_eq!(tc.decompress(&packed).unwrap(), values);
    }

    #[test]
    fn stack_sim_matches_cache(
        blocks in vec(0u64..5000, 1..2000),
        sets_log in 0usize..6,
        ways in 1usize..8,
    ) {
        use atc::cache::{Cache, CacheConfig, StackSim};
        let sets = 1 << sets_log;
        let mut sim = StackSim::new(sets, 8);
        sim.run(blocks.iter().copied());
        let mut cache = Cache::new(CacheConfig { sets, ways, block_shift: 6 });
        for &b in &blocks {
            cache.access_block(b);
        }
        prop_assert!((sim.miss_ratio(ways) - cache.miss_ratio()).abs() < 1e-9);
    }
}
