//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset of criterion's API the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Throughput`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros — over a
//! simple median-of-samples wall-clock measurement. No statistics engine,
//! no HTML reports; results print one line per benchmark:
//!
//! ```text
//! codec/compress/bzip        time:  11.03 ms/iter   thrpt:  90.7 MiB/s
//! ```
//!
//! Honors `ATC_BENCH_QUICK=1` to run a single sample per benchmark (used
//! by CI smoke runs), and `ATC_BENCH_JSON=<path>` to append one JSON
//! object per benchmark to `<path>` (JSON Lines), which CI collects as a
//! machine-readable artifact and gates against a checked-in baseline.
//! `ns_per_iter` is the **median** over samples (robust to a single noisy
//! sample); `ns_min`/`ns_max` record the spread so a wide run is visible
//! in the artifact. `bench_gate` keys on `ns_per_iter` and the throughput
//! field only, so the extra keys are backward compatible:
//!
//! ```text
//! {"id":"codec/compress/bzip","ns_per_iter":11030000.0,"ns_min":10900000.0,"ns_max":11400000.0,"mib_per_s":90.7}
//! ```

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Parses command-line options (no-op in this stand-in; accepts and
    /// ignores criterion's flags such as `--bench` and filters).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
            measurement_time: Duration::from_millis(300),
        }
    }

    /// Runs a stand-alone benchmark (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let id = id.into();
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        g.finish();
    }
}

/// Units for reporting throughput alongside time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Input size in bytes per iteration.
    Bytes(u64),
    /// Number of elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    _parent: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-iteration input size used to report throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the target measurement time per sample batch.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: effective_samples(self.sample_size),
            measurement_time: self.measurement_time,
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Benchmarks a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (report lines are printed as benchmarks run).
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let Some(stats) = SampleStats::from_samples(&b.samples) else {
            return;
        };
        let ns = stats.median;
        let label = if self.name.is_empty() {
            id.id.clone()
        } else {
            format!("{}/{}", self.name, id.id)
        };
        let thrpt = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                let mib = n as f64 / (1 << 20) as f64 / (ns / 1e9);
                format!("   thrpt: {mib:>9.1} MiB/s")
            }
            Some(Throughput::Elements(n)) => {
                let me = n as f64 / 1e6 / (ns / 1e9);
                format!("   thrpt: {me:>9.2} Melem/s")
            }
            None => String::new(),
        };
        println!("{label:<44} time: {}{thrpt}", format_ns(ns));
        if let Some(path) = std::env::var_os("ATC_BENCH_JSON") {
            if let Err(e) = append_json_record(&path, &label, stats, self.throughput) {
                eprintln!("warning: cannot write bench record to {path:?}: {e}");
            }
        }
    }
}

/// Median/min/max of the per-iteration samples: the median is the
/// reported figure (one noisy sample cannot move it), the extremes record
/// the run's spread.
#[derive(Debug, Clone, Copy)]
struct SampleStats {
    median: f64,
    min: f64,
    max: f64,
}

impl SampleStats {
    fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
        let n = sorted.len();
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        Some(Self {
            median,
            min: sorted[0],
            max: sorted[n - 1],
        })
    }
}

/// Appends one JSON-Lines record for a finished benchmark.
fn append_json_record(
    path: &std::ffi::OsStr,
    label: &str,
    stats: SampleStats,
    throughput: Option<Throughput>,
) -> std::io::Result<()> {
    let ns = stats.median;
    let mut record = format!(
        "{{\"id\":{},\"ns_per_iter\":{ns:.1},\"ns_min\":{:.1},\"ns_max\":{:.1}",
        json_string(label),
        stats.min,
        stats.max
    );
    match throughput {
        Some(Throughput::Bytes(n)) => {
            let mib = n as f64 / (1 << 20) as f64 / (ns / 1e9);
            record.push_str(&format!(",\"mib_per_s\":{mib:.3}"));
        }
        Some(Throughput::Elements(n)) => {
            let me = n as f64 / 1e6 / (ns / 1e9);
            record.push_str(&format!(",\"melem_per_s\":{me:.3}"));
        }
        None => {}
    }
    record.push('}');
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(file, "{record}")
}

/// Minimal JSON string encoder (benchmark ids are plain ASCII, but quote
/// and backslash must still never break the record).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn effective_samples(configured: usize) -> usize {
    if std::env::var_os("ATC_BENCH_QUICK").is_some_and(|v| v == "1") {
        1
    } else {
        configured
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:>8.2} s/iter ", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:>8.2} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:>8.2} µs/iter", ns / 1e3)
    } else {
        format!("{ns:>8.0} ns/iter")
    }
}

/// Timing helper handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    /// Nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Measures a closure: a calibration pass sizes iteration batches to
    /// the group's measurement time, then `sample_size` timed samples run.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: one untimed iteration (warms caches), then estimate.
        let start = Instant::now();
        std::hint::black_box(routine());
        let est = start.elapsed().max(Duration::from_nanos(50));
        let iters =
            (self.measurement_time.as_nanos() / est.as_nanos().max(1)).clamp(1, 1_000_000) as usize;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let total = start.elapsed();
            self.samples.push(total.as_nanos() as f64 / iters as f64);
        }
    }

    /// Measures a closure over pre-built inputs (criterion's
    /// `iter_batched` with small batches).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        self.samples.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed().as_nanos() as f64);
        }
    }
}

/// Batch sizing hint for [`Bencher::iter_batched`] (ignored).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bench_runs() {
        std::env::set_var("ATC_BENCH_QUICK", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("group");
        g.sample_size(2)
            .throughput(Throughput::Bytes(1024))
            .measurement_time(Duration::from_millis(5));
        let mut ran = 0usize;
        g.bench_with_input(BenchmarkId::new("f", "p"), &41u64, |b, &x| {
            b.iter(|| x + 1);
            ran += 1;
        });
        g.bench_function("plain", |b| b.iter(|| 2 + 2));
        g.finish();
        assert_eq!(ran, 1);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("compress", "bzip").id, "compress/bzip");
        assert_eq!(BenchmarkId::from_parameter(4).id, "4");
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("plain/id"), "\"plain/id\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("a\nb"), "\"a\\u000ab\"");
    }

    #[test]
    fn json_records_appended() {
        let path = std::env::temp_dir().join(format!("atc-bench-json-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        append_json_record(
            path.as_os_str(),
            "group/f/p",
            SampleStats {
                median: 2e9,
                min: 1.5e9,
                max: 2.5e9,
            },
            Some(Throughput::Bytes(1 << 20)),
        )
        .unwrap();
        append_json_record(
            path.as_os_str(),
            "group/g",
            SampleStats {
                median: 1500.0,
                min: 1500.0,
                max: 1500.0,
            },
            None,
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"id\":\"group/f/p\",\"ns_per_iter\":2000000000.0,\"ns_min\":1500000000.0,\"ns_max\":2500000000.0,\"mib_per_s\":0.500}"
        );
        assert_eq!(
            lines[1],
            "{\"id\":\"group/g\",\"ns_per_iter\":1500.0,\"ns_min\":1500.0,\"ns_max\":1500.0}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stats_median_is_robust_to_one_outlier() {
        let s = SampleStats::from_samples(&[100.0, 101.0, 99.0, 5000.0, 100.5]).unwrap();
        assert_eq!(s.median, 100.5);
        assert_eq!(s.min, 99.0);
        assert_eq!(s.max, 5000.0);
        // Even sample count averages the middle pair.
        let e = SampleStats::from_samples(&[10.0, 20.0, 30.0, 40.0]).unwrap();
        assert_eq!(e.median, 25.0);
        // Single sample (the ATC_BENCH_QUICK shape): all three coincide.
        let q = SampleStats::from_samples(&[7.0]).unwrap();
        assert_eq!((q.median, q.min, q.max), (7.0, 7.0, 7.0));
        assert!(SampleStats::from_samples(&[]).is_none());
    }
}
