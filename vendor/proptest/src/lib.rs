//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset of proptest's API the workspace's property tests
//! use: the [`proptest!`] macro with `#![proptest_config(..)]`, integer
//! range and [`any`] strategies, [`collection::vec`], and the
//! `prop_assert*` macros. Generation is deterministic per test name;
//! failures report the generated inputs. Shrinking is not implemented —
//! failing cases are reported at their generated size.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration (subset: case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed property (returned by `prop_assert*` via early `return`).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic generator handed to strategies by the [`proptest!`] runner.
#[derive(Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds deterministically from the test name so runs are reproducible.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Self(StdRng::seed_from_u64(h))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A value generator (subset of proptest's `Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value: std::fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy for `any::<T>()`: the full domain of `T`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Generates arbitrary values of `T` over its whole domain.
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Strategy for ::std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for ::std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: std::ops::Range<usize>,
    }

    /// Vectors with lengths drawn from `size` and elements from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            // Bias towards boundary sizes so edge cases (empty, minimal,
            // maximal) show up reliably despite the small case counts.
            let len = self.size.clone().generate(rng);
            let len = match len % 16 {
                0 => self.size.start,
                1 => self.size.end - 1,
                _ => len,
            };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (with
/// its inputs echoed) rather than panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*),
                left,
                right
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ..)`
/// becomes a test generating `cases` inputs and running the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])+
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let inputs = format!(
                    concat!($("  ", stringify!($arg), " = {:?}\n"),*),
                    $(&$arg),*
                );
                let result: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(err) = result {
                    panic!(
                        "property `{}` failed at case {}/{}:\n{}\ninputs:\n{}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        err,
                        inputs
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn vec_lengths_respect_range(data in vec(any::<u8>(), 3..10)) {
            prop_assert!((3..10).contains(&data.len()));
        }

        #[test]
        fn ranges_respected(x in 5u32..17, y in 1u8..255, z in any::<u64>()) {
            prop_assert!((5..17).contains(&x));
            prop_assert!((1..255).contains(&y));
            let _ = z;
        }
    }

    proptest! {
        #[test]
        fn default_config_used(x in 0usize..3) {
            prop_assert!(x < 3, "x was {}", x);
        }
    }

    #[test]
    fn deterministic_generation() {
        let mut a = crate::TestRng::deterministic("same-name");
        let mut b = crate::TestRng::deterministic("same-name");
        let s = vec(any::<u64>(), 0..50);
        for _ in 0..20 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
