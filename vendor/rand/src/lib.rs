//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements exactly the subset of the rand 0.9 API the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `random` / `random_range`. The generator is xoshiro256**
//! seeded through SplitMix64 — statistically solid for synthetic trace
//! generation, though the exact streams differ from upstream `rand`
//! (every caller in this workspace seeds explicitly and asserts only
//! statistical properties, never exact values).

/// Types constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A source of randomness (the subset of `rand::Rng` used here).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a uniform value of type `T`.
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, Range: SampleRange<T>>(&mut self, range: Range) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Value types that [`Rng::random`] can produce.
pub trait Random {
    /// Samples a uniform value from `rng`.
    fn random<R: Rng>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for u128 {
    fn random<R: Rng>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Random for bool {
    fn random<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: Rng>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::random_range`] can sample values of type `T` from.
///
/// Parameterized by the element type (rather than using an associated
/// type) so return-type inference can flow into untyped integer literals,
/// as with the real `rand` crate's `SampleRange`.
pub trait SampleRange<T> {
    /// Samples one value.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

/// Debiased sampling of `[0, bound)` via Lemire-style rejection.
fn uniform_below<R: Rng>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone keeps the distribution exactly uniform.
    let zone = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let (hi, lo) = {
            let wide = (x as u128) * (bound as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo >= zone {
            return hi;
        }
    }
}

/// Integer types [`SampleRange`] can sample uniformly.
///
/// A single blanket `SampleRange` impl over this trait (instead of one
/// concrete impl per integer type) is what lets untyped literals like
/// `rng.random_range(1..=2)` infer their type from the surrounding
/// expression, matching the real `rand` crate's inference behavior.
pub trait SampleUniform: Copy + PartialOrd {
    /// `end - self` as a width-extended unsigned span.
    fn span_to(self, end: Self) -> u64;
    /// `self + delta`, wrapping in the type's width.
    fn offset(self, delta: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    (unsigned: $($u:ty),*; signed: $($i:ty),*) => {
        $(impl SampleUniform for $u {
            fn span_to(self, end: Self) -> u64 {
                (end as u64).wrapping_sub(self as u64)
            }
            fn offset(self, delta: u64) -> Self {
                self.wrapping_add(delta as $u)
            }
        })*
        $(impl SampleUniform for $i {
            fn span_to(self, end: Self) -> u64 {
                (end as i64).wrapping_sub(self as i64) as u64
            }
            fn offset(self, delta: u64) -> Self {
                self.wrapping_add(delta as $i)
            }
        })*
    };
}
impl_sample_uniform!(unsigned: u8, u16, u32, u64, usize; signed: i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for ::std::ops::Range<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.start.span_to(self.end);
        self.start.offset(uniform_below(rng, span))
    }
}

impl<T: SampleUniform> SampleRange<T> for ::std::ops::RangeInclusive<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        let span = start.span_to(end);
        if span == u64::MAX {
            return start.offset(rng.next_u64());
        }
        start.offset(uniform_below(rng, span + 1))
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for `rand`'s
    /// `StdRng`; same trait surface, different stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.random_range(0..3);
            assert!(w < 3);
            let x: u64 = rng.random_range(1..=2);
            assert!((1..=2).contains(&x));
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        // Mean of uniform [0,1) ~ 0.5.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }
}
